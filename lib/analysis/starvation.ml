(* Static starvation prediction: classify how a recorded program's
   allocation behavior ends, before (or without) asking the collector.

   The predictor mirrors the collector's own failure semantics at page
   granularity:

   - The plain allocation attempt finds a free usable page or commits a
     fresh one; heap growth inside the plain attempt is rung-free, so a
     program that only ever grows is [Safe].
   - When the plain attempt fails, the escalation ladder runs (collect,
     drain, trim, grow, relax, hook).  A collection forced by the
     ladder appears in the trace as an ordinary GC point — but one that
     arrives long before the auto-collect budget (allocated-since-GC >=
     committed/space_divisor) is spent.  That budget-rule mirror is the
     forced-collect signature: rungs fired, yet the program survived —
     [Ladder_rescuable].
   - A page is unusable for a scanned small request when its blacklist
     bucket is set; the predicted blacklist is the bucket image of the
     false references the marker model already collects (the
     [unresolved] raws of the last two snapshots — exactly the
     current+previous aging window the real collector keeps).  When
     final live data plus the next request fit in the reserved heap but
     not in its non-blacklisted part, the program is
     [Blacklist_starved] — unless the configuration relaxes the
     blacklist under pressure, which turns the same shape back into
     [Ladder_rescuable].
   - Under a memory-decay fault plan, every [every]-th guarded write
     quarantines a region's pages; the trace knows its own write count
     (explicit writes plus allocation zeroing), so the decayed-page
     count is predictable.  Fits-without-decay but not with it:
     [Decay_vulnerable].
   - Demand beyond the reserved region with none of the above escapes:
     [Exhausted]. *)

module ISet = Liveness.ISet

type classification =
  | Safe
  | Ladder_rescuable
  | Blacklist_starved
  | Decay_vulnerable
  | Exhausted

let class_name = function
  | Safe -> "safe"
  | Ladder_rescuable -> "ladder-rescuable"
  | Blacklist_starved -> "blacklist-starved"
  | Decay_vulnerable -> "decay-vulnerable"
  | Exhausted -> "exhausted"

type geometry = {
  st_page_size : int;
  st_granule : int;
  st_reserved_pages : int;
  st_initial_pages : int;
  st_space_divisor : int;
  st_max_small_bytes : int;
  st_blacklisting : bool;
  st_relax_blacklist : bool;
  st_atomic_on_black : bool;
  st_auto_collect : bool;
  st_heap_base : int;
  st_blacklist : Cgc.Blacklist.geometry;
}

let capture gc =
  let config = Cgc.Gc.config gc in
  let heap = Cgc.Gc.heap gc in
  {
    st_page_size = config.Cgc.Config.page_size;
    st_granule = config.Cgc.Config.granule;
    st_reserved_pages = Cgc.Heap.n_pages heap;
    st_initial_pages = min config.Cgc.Config.initial_pages (Cgc.Heap.n_pages heap);
    st_space_divisor = config.Cgc.Config.space_divisor;
    st_max_small_bytes = Cgc.Config.max_small_bytes config;
    st_blacklisting = config.Cgc.Config.blacklisting;
    st_relax_blacklist = config.Cgc.Config.relax_blacklist;
    st_atomic_on_black = config.Cgc.Config.atomic_on_black_pages;
    st_auto_collect = Cgc.Gc.auto_collect gc;
    st_heap_base = Cgc_vm.Addr.to_int (Cgc.Heap.base heap);
    st_blacklist = Cgc.Blacklist.geometry (Cgc.Gc.blacklist gc);
  }

type decay_hint = {
  dh_every : int;  (** guarded writes per injected decay fault *)
  dh_region_bytes : int;  (** bytes quarantined around each fault *)
}

type site = {
  site_bytes : int;
  site_pointer_free : bool;
  site_count : int;
  site_class : classification;
}

type prediction = {
  pr_class : classification;
  pr_black_pages : int;  (** predicted blacklist-unusable pages *)
  pr_decayed_pages : int;
  pr_forced_collects : int;  (** GC points bearing the ladder signature *)
  pr_live_pages : int;  (** page-grained footprint of the final live set *)
  pr_usable_pages : int;  (** reserved minus predicted black and decayed *)
  pr_sites : site list;
  pr_note : string;
}

(* Page-grained footprint of a set of objects: small objects pack into
   size-classed pages (slot = granule-rounded size), large objects take
   whole pages. *)
let pages_of_objects g sizes =
  let classes : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let large = ref 0 in
  List.iter
    (fun bytes ->
      if bytes > g.st_max_small_bytes then
        large := !large + ((bytes + g.st_page_size - 1) / g.st_page_size)
      else
        let slot =
          let gr = g.st_granule in
          max gr ((bytes + gr - 1) / gr * gr)
        in
        Hashtbl.replace classes slot (Option.value (Hashtbl.find_opt classes slot) ~default:0 + 1))
    sizes;
  Hashtbl.fold
    (fun slot count acc ->
      let per_page = max 1 (g.st_page_size / slot) in
      acc + ((count + per_page - 1) / per_page))
    classes !large

let pages_for_request g bytes =
  if bytes > g.st_max_small_bytes then (bytes + g.st_page_size - 1) / g.st_page_size else 1

(* Predicted blacklist: bucket image of the false references the
   marker model saw at the last two GC points (the collector's
   current+previous aging window), mapped back to the per-page
   unusable set. *)
let predict_black_map g (r : Apparent.result) =
  let snaps = r.Apparent.snapshots in
  let last_two =
    match List.rev snaps with a :: b :: _ -> [ a; b ] | l -> l
  in
  let heap_bytes = g.st_reserved_pages * g.st_page_size in
  let buckets = ref ISet.empty in
  List.iter
    (fun (s : Apparent.gc_snapshot) ->
      ISet.iter
        (fun raw ->
          if raw >= g.st_heap_base && raw < g.st_heap_base + heap_bytes then
            let page = (raw - g.st_heap_base) / g.st_page_size in
            buckets := ISet.add (Cgc.Blacklist.bucket g.st_blacklist page) !buckets)
        s.Apparent.unresolved)
    last_two;
  let black = Array.make (max 1 g.st_reserved_pages) false in
  if g.st_blacklisting && not (ISet.is_empty !buckets) then
    (* hashed representations smear one dirty bucket over many pages *)
    for page = 0 to g.st_reserved_pages - 1 do
      if ISet.mem (Cgc.Blacklist.bucket g.st_blacklist page) !buckets then black.(page) <- true
    done;
  black

(* The forced-collect signature: a recorded GC point reached with far
   less allocation than the auto-collect budget means the collection
   was not the budget rule's — something (an allocation failure, i.e. a
   ladder rung) forced it.  The committed estimate is the initial
   commitment, a lower bound, so growth-only programs cannot trip the
   signature spuriously. *)
let count_forced_collects g (p : Ir.program) =
  let budget = g.st_initial_pages * g.st_page_size / g.st_space_divisor in
  let threshold = budget / 2 in
  let forced = ref 0 in
  let since = ref 0 in
  let first = ref true in
  Array.iter
    (fun instr ->
      match instr with
      | Ir.Alloc { bytes; _ } -> since := !since + bytes
      | Ir.Gc_point _ ->
          if (not !first) && g.st_auto_collect && !since < threshold then incr forced;
          first := false;
          since := 0
      | _ -> ())
    p.Ir.code;
  !forced

(* Guarded write charges the trace implies: explicit stores (one charge
   each) plus the collector's allocation-time zeroing (one guarded
   charge per object). *)
let count_writes (p : Ir.program) =
  Array.fold_left
    (fun acc instr ->
      match instr with
      | Ir.Alloc _ | Ir.Heap_write _ | Ir.Local_write _ | Ir.Spill_write _ | Ir.Root_write _ ->
          acc + 1
      | Ir.Stack_clear { n_words; _ } -> acc + n_words
      | _ -> acc)
    0 p.Ir.code

let predict ?decay (g : geometry) (p : Ir.program) (r : Apparent.result) =
  let black_map = predict_black_map g r in
  let black = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 black_map in
  let max_clean_run =
    let best = ref 0 and cur = ref 0 in
    Array.iter
      (fun b ->
        if b then cur := 0
        else begin
          incr cur;
          if !cur > !best then best := !cur
        end)
      black_map;
    !best
  in
  let decayed =
    match decay with
    | None -> 0
    | Some d ->
        let trips = count_writes p / max 1 d.dh_every in
        let pages_per_trip =
          max 1 ((d.dh_region_bytes + g.st_page_size - 1) / g.st_page_size)
        in
        min g.st_reserved_pages (trips * pages_per_trip)
  in
  let forced = count_forced_collects g p in
  (* final live footprint: what the last collection kept (apparent =
     what a conservative collector retains), page-grained *)
  let live_sizes =
    match List.rev r.Apparent.snapshots with
    | [] -> []
    | (s : Apparent.gc_snapshot) :: _ ->
        List.filter_map
          (fun id ->
            Option.map
              (fun (o : Apparent.obj_state) -> o.Apparent.o_bytes)
              (Hashtbl.find_opt r.Apparent.objects id))
          (ISet.elements s.Apparent.apparent)
  in
  let live_pages = pages_of_objects g live_sizes in
  (* classify a request kind against the final state *)
  let classify_kind ~bytes ~pointer_free =
    let need = pages_for_request g bytes in
    let black_for_kind =
      if pointer_free && g.st_atomic_on_black && bytes <= g.st_max_small_bytes then 0 else black
    in
    let usable = g.st_reserved_pages - black_for_kind - decayed in
    let fits =
      live_pages + need <= usable
      (* a large request additionally needs a contiguous non-black run
         (the collector places it whole); only checkable cleanly when
         live placement doesn't fragment the heap *)
      && (need <= 1 || black_for_kind = 0 || live_pages > 0 || max_clean_run >= need)
    in
    if fits then if forced > 0 then Ladder_rescuable else Safe
    else if decayed > 0 && live_pages + need <= g.st_reserved_pages - black_for_kind then
      Decay_vulnerable
    else if
      g.st_blacklisting && black_for_kind > 0 && live_pages + need <= g.st_reserved_pages - decayed
    then if g.st_relax_blacklist then Ladder_rescuable else Blacklist_starved
    else Exhausted
  in
  let kinds : (int * bool, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun instr ->
      match instr with
      | Ir.Alloc { bytes; pointer_free; _ } ->
          let k = (bytes, pointer_free) in
          Hashtbl.replace kinds k (Option.value (Hashtbl.find_opt kinds k) ~default:0 + 1)
      | _ -> ())
    p.Ir.code;
  let sites =
    Hashtbl.fold
      (fun (bytes, pointer_free) count acc ->
        {
          site_bytes = bytes;
          site_pointer_free = pointer_free;
          site_count = count;
          site_class = classify_kind ~bytes ~pointer_free;
        }
        :: acc)
      kinds []
    |> List.sort (fun a b -> compare (b.site_count, b.site_bytes) (a.site_count, a.site_bytes))
  in
  (* the program's fate is the fate of its most endangered request
     kind: a request that dies raises out of the mutator before the
     tracer can record it, so the worst recorded kind is the proxy for
     what the program was asking of the heap when the trace ended *)
  let rank = function
    | Safe -> 0
    | Ladder_rescuable -> 1
    | Blacklist_starved -> 2
    | Decay_vulnerable -> 3
    | Exhausted -> 4
  in
  let pr_class =
    List.fold_left
      (fun acc s -> if rank s.site_class > rank acc then s.site_class else acc)
      Safe sites
  in
  let usable = g.st_reserved_pages - black - decayed in
  let note =
    Printf.sprintf
      "%d live page(s) of %d reserved; %d predicted black, %d predicted decayed, %d forced \
       collect(s)"
      live_pages g.st_reserved_pages black decayed forced
  in
  {
    pr_class;
    pr_black_pages = black;
    pr_decayed_pages = decayed;
    pr_forced_collects = forced;
    pr_live_pages = live_pages;
    pr_usable_pages = usable;
    pr_sites = sites;
    pr_note = note;
  }

(* ------------------------------------------------------------------ *)
(* The measured side: the same classification read off a finished run *)

let ladder_rungs (st : Cgc.Stats.t) =
  st.Cgc.Stats.ladder_collects + st.Cgc.Stats.ladder_drains + st.Cgc.Stats.ladder_trims
  + st.Cgc.Stats.ladder_expansions + st.Cgc.Stats.ladder_relax_first_page
  + st.Cgc.Stats.ladder_relax_black + st.Cgc.Stats.ladder_oom_hooks

let classify_measured ~(oom : Cgc.Gc.oom_diagnosis option) (st : Cgc.Stats.t) =
  match oom with
  | Some d ->
      if d.Cgc.Gc.memory_decayed then Decay_vulnerable
      else if d.Cgc.Gc.blacklist_starved then Blacklist_starved
      else Exhausted
  | None -> if ladder_rungs st > 0 then Ladder_rescuable else Safe

let pp_prediction ppf p =
  Format.fprintf ppf "@[<v2>starvation: predicted %s@,%a" (class_name p.pr_class) Fmt.text
    p.pr_note;
  List.iter
    (fun s ->
      Format.fprintf ppf "@,site: %d x %dB%s -> %s" s.site_count s.site_bytes
        (if s.site_pointer_free then " atomic" else "")
        (class_name s.site_class))
    p.pr_sites;
  Format.fprintf ppf "@]"
