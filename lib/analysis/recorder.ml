open Cgc_vm
module Machine = Cgc_mutator.Machine

type t = {
  machine : Machine.t;
  gc : Cgc.Gc.t;
  globals : Segment.t;
  stack_lo : int;
  stack_words : int;
  globals_lo : int;
  globals_words : int;
  ids : (int, int) Hashtbl.t;  (** current base address -> object id *)
  bases : (int, int) Hashtbl.t;  (** object id -> base address at allocation *)
  mutable next_id : int;
  mutable rev_code : Ir.instr list;
  mutable dropped : int;
}

let push t i = t.rev_code <- i :: t.rev_code

let stack_word t addr = (Addr.to_int addr - t.stack_lo) / Ir.word_bytes
let global_word t addr = (Addr.to_int addr - t.globals_lo) / Ir.word_bytes

(* Tag a written word with the object it refers to right now, if any.
   [Cgc.Gc.find_object] is the exact query (always interior-aware), so
   the tag is the ground truth of the moment of the write — which is
   what a type-accurate collector would know. *)
let tag t raw =
  if raw = 0 then Ir.vint 0
  else
    match Cgc.Gc.find_object t.gc (Addr.of_int raw) with
    | None -> Ir.vint raw
    | Some base -> (
        match Hashtbl.find_opt t.ids (Addr.to_int base) with
        | Some id -> { Ir.raw; obj = Some id }
        | None -> Ir.vint raw)

let obj_id t base =
  match Hashtbl.find_opt t.ids (Addr.to_int base) with
  | Some id -> Some id
  | None -> (
      (* interior handle: resolve to the containing object's base *)
      match Cgc.Gc.find_object t.gc base with
      | None -> None
      | Some b -> Hashtbl.find_opt t.ids (Addr.to_int b))

let handle t (ev : Machine.event) =
  match ev with
  | Machine.E_alloc { base; bytes; pointer_free } ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.ids (Addr.to_int base) id;
      Hashtbl.replace t.bases id (Addr.to_int base);
      push t (Ir.Alloc { obj = id; base = Addr.to_int base; bytes; pointer_free })
  | Machine.E_reg_write { reg; value } -> push t (Ir.Reg_write { reg; value = tag t value })
  | Machine.E_reg_read { reg } -> push t (Ir.Reg_read { reg })
  | Machine.E_frame_push { slots; padding; cleared } ->
      push t (Ir.Frame_push { slots; padding; cleared })
  | Machine.E_frame_pop { slots; padding; cleared } ->
      push t (Ir.Frame_pop { slots; padding; cleared })
  | Machine.E_local_write { addr; value } ->
      push t (Ir.Local_write { word = stack_word t addr; value = tag t value })
  | Machine.E_local_read { addr } -> push t (Ir.Local_read { word = stack_word t addr })
  | Machine.E_spill_write { addr; value } ->
      push t (Ir.Spill_write { word = stack_word t addr; value = tag t value })
  | Machine.E_stack_clear { lo; hi } ->
      let lo_word = stack_word t lo in
      push t (Ir.Stack_clear { lo_word; n_words = stack_word t hi - lo_word })
  | Machine.E_heap_write { obj; field; value } -> (
      match obj_id t obj with
      | Some id -> push t (Ir.Heap_write { obj = id; field; value = tag t value })
      | None -> t.dropped <- t.dropped + 1)
  | Machine.E_heap_read { obj; field } -> (
      match obj_id t obj with
      | Some id -> push t (Ir.Heap_read { obj = id; field })
      | None -> t.dropped <- t.dropped + 1)
  | Machine.E_root_write { addr; value } ->
      let w = global_word t addr in
      if w >= 0 && w < t.globals_words then
        push t (Ir.Root_write { word = w; value = tag t value })
      else t.dropped <- t.dropped + 1
  | Machine.E_root_read { addr } ->
      let w = global_word t addr in
      if w >= 0 && w < t.globals_words then push t (Ir.Root_read { word = w })
      else t.dropped <- t.dropped + 1
  | Machine.E_gc { collections; live_objects; live_bytes } ->
      push t
        (Ir.Gc_point
           {
             measured =
               Some
                 {
                   Ir.m_collections = collections;
                   m_live_objects = live_objects;
                   m_live_bytes = live_bytes;
                 };
           })
  | Machine.E_park { words } -> push t (Ir.Park { words })
  | Machine.E_unpark -> push t Ir.Unpark
  | Machine.E_clear_registers -> push t Ir.Clear_registers
  | Machine.E_finalizer { obj; token } -> (
      match obj_id t obj with
      | Some id -> push t (Ir.Finalizer_attach { obj = id; token })
      | None -> t.dropped <- t.dropped + 1)
  | Machine.E_spawn { thread; words } -> push t (Ir.Spawn { thread; words })
  | Machine.E_join { thread } -> push t (Ir.Join { thread })
  | Machine.E_write_barrier { obj; field } -> (
      match obj_id t obj with
      | Some id -> push t (Ir.Write_barrier { obj = id; field })
      | None -> t.dropped <- t.dropped + 1)

let attach machine ~globals =
  let stack_lo, stack_hi = Machine.stack_limits machine in
  let t =
    {
      machine;
      gc = Machine.gc machine;
      globals;
      stack_lo = Addr.to_int stack_lo;
      stack_words = Addr.diff stack_hi stack_lo / Ir.word_bytes;
      globals_lo = Addr.to_int (Segment.base globals);
      globals_words = Segment.size globals / Ir.word_bytes;
      ids = Hashtbl.create 4096;
      bases = Hashtbl.create 4096;
      next_id = 0;
      rev_code = [];
      dropped = 0;
    }
  in
  Machine.set_tracer machine (Some (handle t));
  t

let finish t =
  (* a final Gc.collect followed by no machine activity would otherwise
     leave its collection cycle unrecorded *)
  Machine.poll_gc t.machine;
  Machine.set_tracer t.machine None;
  {
    Ir.n_registers = Machine.n_registers t.machine;
    stack_words = t.stack_words;
    globals_words = t.globals_words;
    interior_pointers = (Cgc.Gc.config t.gc).Cgc.Config.interior_pointers;
    code = Array.of_list (List.rev t.rev_code);
  }

(* Detach without producing a program.  Scenario runners call this from
   an exception path: a recorder left attached to a shared machine
   would keep translating the *next* scenario's events into this
   (abandoned) session's id space, poisoning its IR. *)
let abort t =
  Machine.set_tracer t.machine None;
  t.rev_code <- [];
  Hashtbl.reset t.ids;
  Hashtbl.reset t.bases

let base_of_obj t id = Option.map Addr.of_int (Hashtbl.find_opt t.bases id)
let dropped_events t = t.dropped
