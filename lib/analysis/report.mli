(** Report printer for analysis results. *)

val pp_table : Format.formatter -> Analysis.t -> unit
(** Per-GC-point table: apparent vs precise vs measured object counts
    and a breakdown of spurious roots by class. *)

val pp_validation : Format.formatter -> Analysis.validation -> unit

val pp :
  ?explain:(Format.formatter -> int -> unit) ->
  Format.formatter ->
  Analysis.t ->
  unit
(** Full report.  [explain] is called with each finding's example
    object id, letting the caller print a dynamic provenance chain
    (e.g. {!Cgc.Inspect.why_live}) from the live collector. *)
