(** Report printer for analysis results. *)

val pp_table : Format.formatter -> Analysis.t -> unit
(** Per-GC-point table: apparent vs precise vs measured object counts
    and a breakdown of spurious roots by class. *)

val pp_validation : Format.formatter -> Analysis.validation -> unit

val pp_fix : Format.formatter -> Analysis.fix -> unit

val pp_fixes : Format.formatter -> Analysis.t -> unit
(** The fixes section: every finding's suggested edit list with its
    static verification verdict. *)

val pp :
  ?explain:(Format.formatter -> int -> unit) ->
  ?fixes:bool ->
  Format.formatter ->
  Analysis.t ->
  unit
(** Full report.  [explain] is called with each finding's example
    object id, letting the caller print a dynamic provenance chain
    (e.g. {!Cgc.Inspect.why_live}) from the live collector.  [fixes]
    appends the fixes section. *)

(** {1 JSON}

    Hand-rolled emitters (the toolchain carries no JSON library) for
    the CI artifact and machine-readable diffing. *)

val json : ?name:string -> ?replay:bool -> Format.formatter -> Analysis.t -> unit
(** One scenario's analysis as a JSON object: validation verdict,
    per-GC-point table, findings with their fix verdicts.  [replay]
    additionally replays each suggested fix through a real collector
    and embeds the measured retention drop. *)

val json_matrix : Format.formatter -> Scenarios.matrix_entry list -> unit
(** The starvation matrix as a JSON array of
    predicted-vs-measured rows. *)
