(** Static OOM-diagnosis prediction.

    Classifies how a recorded program's allocation behavior ends —
    [Safe], rescued by the escalation ladder, starved by the blacklist,
    killed by decayed memory, or genuinely exhausted — by mirroring the
    collector's failure semantics at page granularity over the marker
    model's snapshots.  [classify_measured] reads the same
    classification off a finished run (its OOM diagnosis and ladder
    counters), so predictions can be validated exactly against the real
    collector. *)

type classification =
  | Safe  (** no OOM, no escalation-ladder rungs (plain growth included) *)
  | Ladder_rescuable  (** the ladder fired (forced collects, relaxation) but the program survived *)
  | Blacklist_starved  (** OOM with room left when the blacklist is ignored *)
  | Decay_vulnerable  (** OOM forced by decay-quarantined pages *)
  | Exhausted  (** OOM with no such escape: the heap is simply too small *)

val class_name : classification -> string

type geometry = {
  st_page_size : int;
  st_granule : int;
  st_reserved_pages : int;
  st_initial_pages : int;
  st_space_divisor : int;
  st_max_small_bytes : int;
  st_blacklisting : bool;
  st_relax_blacklist : bool;
  st_atomic_on_black : bool;
  st_auto_collect : bool;
  st_heap_base : int;
  st_blacklist : Cgc.Blacklist.geometry;
}

val capture : Cgc.Gc.t -> geometry
(** Snapshot the collector-side facts the predictor needs (page
    geometry, budget rule, blacklist representation).  Capture at
    attach time: the values are configuration, not run state. *)

type decay_hint = {
  dh_every : int;  (** guarded writes per injected decay fault *)
  dh_region_bytes : int;
}

type site = {
  site_bytes : int;
  site_pointer_free : bool;
  site_count : int;
  site_class : classification;
}

type prediction = {
  pr_class : classification;
  pr_black_pages : int;
  pr_decayed_pages : int;
  pr_forced_collects : int;
      (** GC points arriving well under the auto-collect budget — the
          trace signature of ladder-forced collections *)
  pr_live_pages : int;
  pr_usable_pages : int;
  pr_sites : site list;
      (** per allocation kind (size, atomicity), most frequent first *)
  pr_note : string;
}

val predict : ?decay:decay_hint -> geometry -> Ir.program -> Apparent.result -> prediction

val ladder_rungs : Cgc.Stats.t -> int
(** Total escalation-ladder rungs a run fired, summed over the rung
    counters. *)

val classify_measured : oom:Cgc.Gc.oom_diagnosis option -> Cgc.Stats.t -> classification

val pp_prediction : Format.formatter -> prediction -> unit
