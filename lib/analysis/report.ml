(* Human-readable report: per-GC-point retention table, spurious-root
   breakdown, lint findings, validation verdict.  [explain] lets the
   caller attach dynamic provenance (an [Inspect.why_live] chain from
   the live collector) to any finding's example object. *)

module ISet = Liveness.ISet

let pp_table ppf (t : Analysis.t) =
  Fmt.pf ppf "@[<v>%-5s %-10s %-10s %-10s %-8s %s@,"
    "gc#" "apparent" "precise" "measured" "excess" "spurious roots";
  List.iter
    (fun (s : Apparent.gc_snapshot) ->
      let app = ISet.cardinal s.apparent and pre = ISet.cardinal s.precise in
      let counts = Hashtbl.create 8 in
      List.iter
        (fun (r : Apparent.spurious_root) ->
          Hashtbl.replace counts r.sr_class
            (1 + Option.value (Hashtbl.find_opt counts r.sr_class) ~default:0))
        s.spurious;
      let breakdown =
        Hashtbl.fold
          (fun cls n acc -> Printf.sprintf "%s:%d" (Apparent.class_name cls) n :: acc)
          counts []
        |> List.sort compare |> String.concat " "
      in
      Fmt.pf ppf "%-5d %-10d %-10d %-10s %-8d %s@," s.ordinal app pre
        (match s.measured with
        | Some m -> string_of_int m.Ir.m_live_objects
        | None -> "-")
        (app - pre) breakdown)
    t.retention.Apparent.snapshots;
  Fmt.pf ppf "@]"

let pp_validation ppf (v : Analysis.validation) =
  Fmt.pf ppf "@[<v>soundness (precise \xe2\x8a\x86 apparent): %s@,"
    (if v.sound then "ok" else "VIOLATED");
  if v.n_measured > 0 then
    Fmt.pf ppf "cross-validation vs collector: %s (%d/%d points measured, worst err %d objs / %.1f%%)@,"
      (if v.within_tolerance then "ok" else "OUT OF TOLERANCE")
      v.n_measured v.n_gc_points v.worst_abs_err (100. *. v.worst_rel_err)
  else Fmt.pf ppf "cross-validation vs collector: no measured GC points@,";
  Fmt.pf ppf "@]"

let pp_fix ppf (f : Analysis.fix) =
  match f.Analysis.suggestion with
  | None -> Fmt.pf ppf "[%s] no mechanical fix" f.Analysis.finding.Lint.rule
  | Some s ->
      Fmt.pf ppf "%a" Fixes.pp_suggestion s;
      (match f.Analysis.verdict with
      | Some v -> Fmt.pf ppf "@,  %a" Fixes.pp_verdict v
      | None -> ())

let pp_fixes ppf (t : Analysis.t) =
  match t.Analysis.fixes with
  | [] -> Fmt.pf ppf "== fixes ==@,none@,"
  | fs ->
      Fmt.pf ppf "== fixes ==@,";
      List.iter (fun f -> Fmt.pf ppf "@[<v>%a@]@," pp_fix f) fs

let pp ?explain ?(fixes = false) ppf (t : Analysis.t) =
  Fmt.pf ppf "@[<v>== retention per GC point (%d objects allocated) ==@,%a@,"
    t.retention.Apparent.n_objects pp_table t;
  Fmt.pf ppf "== validation ==@,%a@," pp_validation (Analysis.validate t);
  (match t.findings with
  | [] -> Fmt.pf ppf "== findings ==@,none@,"
  | fs ->
      Fmt.pf ppf "== findings ==@,";
      List.iter
        (fun (f : Lint.finding) ->
          Fmt.pf ppf "%a@," Lint.pp_finding f;
          match (f.Lint.example_obj, explain) with
          | Some id, Some ex -> ex ppf id
          | _ -> ())
        fs);
  if fixes then pp_fixes ppf t;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* JSON output (hand-rolled: the toolchain carries no JSON library)    *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr ppf s = Fmt.pf ppf "\"%s\"" (json_escape s)
let jbool ppf b = Fmt.pf ppf "%b" b

let jlist pp_elt ppf xs =
  Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ",") pp_elt) xs

let json_verdict ppf (v : Fixes.verdict) =
  Fmt.pf ppf
    "{\"gc_points\":%d,\"precise_preserved\":%a,\"apparent_not_worse\":%a,\"reads_preserved\":%a,\"no_premature_free\":%a,\"apparent_drop_bytes\":%d,\"sound\":%a}"
    v.Fixes.sv_gc_points jbool v.Fixes.sv_precise_preserved jbool v.Fixes.sv_apparent_not_worse
    jbool v.Fixes.sv_reads_preserved jbool v.Fixes.sv_no_premature_free
    v.Fixes.sv_apparent_drop_bytes jbool (Fixes.sound v)

let json_replay ppf (c : Replay.comparison) =
  Fmt.pf ppf
    "{\"retention_before\":%d,\"retention_after\":%d,\"retention_drop\":%d,\"reads_equal\":%a,\"skipped_after\":%d}"
    c.Replay.cmp_before.Replay.rp_total_retained c.Replay.cmp_after.Replay.rp_total_retained
    c.Replay.cmp_retention_drop jbool c.Replay.cmp_reads_equal
    c.Replay.cmp_after.Replay.rp_skipped

let json_fix ~replay (t : Analysis.t) ppf (f : Analysis.fix) =
  Fmt.pf ppf "{\"rule\":%a,\"title\":%a" jstr f.Analysis.finding.Lint.rule jstr
    f.Analysis.finding.Lint.title;
  (match f.Analysis.suggestion with
  | None -> Fmt.pf ppf ",\"fix\":null"
  | Some s ->
      Fmt.pf ppf ",\"fix\":{\"title\":%a,\"edits\":%d" jstr s.Fixes.fx_title
        (List.length s.Fixes.fx_edits);
      (match f.Analysis.verdict with
      | Some v -> Fmt.pf ppf ",\"static\":%a" json_verdict v
      | None -> ());
      if replay then
        Fmt.pf ppf ",\"replay\":%a" json_replay
          (Replay.compare_fix t.Analysis.program s.Fixes.fx_edits);
      Fmt.pf ppf "}");
  Fmt.pf ppf "}"

let json_snapshot ppf (s : Apparent.gc_snapshot) =
  Fmt.pf ppf
    "{\"ordinal\":%d,\"apparent\":%d,\"precise\":%d,\"apparent_bytes\":%d,\"precise_bytes\":%d,\"measured\":%s,\"stack_excess\":%d}"
    s.Apparent.ordinal
    (ISet.cardinal s.Apparent.apparent)
    (ISet.cardinal s.Apparent.precise)
    s.Apparent.apparent_bytes s.Apparent.precise_bytes
    (match s.Apparent.measured with
    | Some m -> string_of_int m.Ir.m_live_objects
    | None -> "null")
    s.Apparent.stack_excess

let json ?name ?(replay = false) ppf (t : Analysis.t) =
  let v = Analysis.validate t in
  Fmt.pf ppf "{";
  (match name with Some n -> Fmt.pf ppf "\"scenario\":%a," jstr n | None -> ());
  Fmt.pf ppf
    "\"validation\":{\"sound\":%a,\"within_tolerance\":%a,\"gc_points\":%d,\"measured_points\":%d,\"worst_abs_err\":%d},"
    jbool v.Analysis.sound jbool v.Analysis.within_tolerance v.Analysis.n_gc_points
    v.Analysis.n_measured v.Analysis.worst_abs_err;
  Fmt.pf ppf "\"gc\":%a," (jlist json_snapshot) t.retention.Apparent.snapshots;
  Fmt.pf ppf "\"findings\":%a}" (jlist (json_fix ~replay t)) t.Analysis.fixes

let json_prediction ppf (p : Starvation.prediction) =
  Fmt.pf ppf
    "{\"class\":%a,\"black_pages\":%d,\"decayed_pages\":%d,\"forced_collects\":%d,\"live_pages\":%d,\"usable_pages\":%d}"
    jstr
    (Starvation.class_name p.Starvation.pr_class)
    p.Starvation.pr_black_pages p.Starvation.pr_decayed_pages p.Starvation.pr_forced_collects
    p.Starvation.pr_live_pages p.Starvation.pr_usable_pages

let json_matrix_entry ppf (e : Scenarios.matrix_entry) =
  Fmt.pf ppf "{\"name\":%a,\"predicted\":%a,\"measured\":%a,\"match\":%a,\"ladder_rungs\":%d," jstr
    e.Scenarios.m_name jstr
    (Starvation.class_name e.Scenarios.m_predicted)
    jstr
    (Starvation.class_name e.Scenarios.m_measured)
    jbool
    (e.Scenarios.m_predicted = e.Scenarios.m_measured)
    e.Scenarios.m_ladder_rungs;
  (match e.Scenarios.m_oom with
  | Some d ->
      Fmt.pf ppf
        "\"oom\":{\"message\":%a,\"blacklist_starved\":%a,\"memory_decayed\":%a}," jstr
        (Cgc.Gc.oom_message d) jbool d.Cgc.Gc.blacklist_starved jbool d.Cgc.Gc.memory_decayed
  | None -> Fmt.pf ppf "\"oom\":null,");
  Fmt.pf ppf "\"prediction\":%a}" json_prediction e.Scenarios.m_prediction

let json_matrix ppf entries = Fmt.pf ppf "%a" (jlist json_matrix_entry) entries
