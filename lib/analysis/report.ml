(* Human-readable report: per-GC-point retention table, spurious-root
   breakdown, lint findings, validation verdict.  [explain] lets the
   caller attach dynamic provenance (an [Inspect.why_live] chain from
   the live collector) to any finding's example object. *)

module ISet = Liveness.ISet

let pp_table ppf (t : Analysis.t) =
  Fmt.pf ppf "@[<v>%-5s %-10s %-10s %-10s %-8s %s@,"
    "gc#" "apparent" "precise" "measured" "excess" "spurious roots";
  List.iter
    (fun (s : Apparent.gc_snapshot) ->
      let app = ISet.cardinal s.apparent and pre = ISet.cardinal s.precise in
      let counts = Hashtbl.create 8 in
      List.iter
        (fun (r : Apparent.spurious_root) ->
          Hashtbl.replace counts r.sr_class
            (1 + Option.value (Hashtbl.find_opt counts r.sr_class) ~default:0))
        s.spurious;
      let breakdown =
        Hashtbl.fold
          (fun cls n acc -> Printf.sprintf "%s:%d" (Apparent.class_name cls) n :: acc)
          counts []
        |> List.sort compare |> String.concat " "
      in
      Fmt.pf ppf "%-5d %-10d %-10d %-10s %-8d %s@," s.ordinal app pre
        (match s.measured with
        | Some m -> string_of_int m.Ir.m_live_objects
        | None -> "-")
        (app - pre) breakdown)
    t.retention.Apparent.snapshots;
  Fmt.pf ppf "@]"

let pp_validation ppf (v : Analysis.validation) =
  Fmt.pf ppf "@[<v>soundness (precise \xe2\x8a\x86 apparent): %s@,"
    (if v.sound then "ok" else "VIOLATED");
  if v.n_measured > 0 then
    Fmt.pf ppf "cross-validation vs collector: %s (%d/%d points measured, worst err %d objs / %.1f%%)@,"
      (if v.within_tolerance then "ok" else "OUT OF TOLERANCE")
      v.n_measured v.n_gc_points v.worst_abs_err (100. *. v.worst_rel_err)
  else Fmt.pf ppf "cross-validation vs collector: no measured GC points@,";
  Fmt.pf ppf "@]"

let pp ?explain ppf (t : Analysis.t) =
  Fmt.pf ppf "@[<v>== retention per GC point (%d objects allocated) ==@,%a@,"
    t.retention.Apparent.n_objects pp_table t;
  Fmt.pf ppf "== validation ==@,%a@," pp_validation (Analysis.validate t);
  (match t.findings with
  | [] -> Fmt.pf ppf "== findings ==@,none@,"
  | fs ->
      Fmt.pf ppf "== findings ==@,";
      List.iter
        (fun (f : Lint.finding) ->
          Fmt.pf ppf "%a@," Lint.pp_finding f;
          match (f.Lint.example_obj, explain) with
          | Some id, Some ex -> ex ppf id
          | _ -> ())
        fs);
  Fmt.pf ppf "@]"
