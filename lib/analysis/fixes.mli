(** Verified fix suggestions for lint findings.

    A suggestion is a list of mechanical IR edits — link-field clears
    placed just after an object's last access, [Stack_clear]s placed
    just before GC points, or atomic re-allocations — generated so the
    edit provably cannot change the program's reads or its precise
    retention.  [verify_static] checks that claim by re-running the
    full liveness + marker pipeline on the edited program; {!Replay}
    provides the dynamic half (measured retention through the real
    collector). *)

type edit =
  | Insert of { at : int; instr : Ir.instr }
      (** insert [instr] before original instruction index [at]
          ([at = length] appends) *)
  | Make_atomic of { obj : int }
      (** rewrite the object's [Alloc] to [pointer_free = true] *)

type suggestion = {
  fx_rule : string;  (** the lint rule this fix closes *)
  fx_title : string;
  fx_edits : edit list;
  fx_rationale : string;
}

type verdict = {
  sv_gc_points : int;
  sv_precise_preserved : bool;
      (** per-GC precise sets identical on the edited program *)
  sv_apparent_not_worse : bool;
      (** per-GC apparent sets are subsets of the originals *)
  sv_reads_preserved : bool;
      (** the full read stream (every value any read returns) is
          unchanged *)
  sv_no_premature_free : bool;
      (** the edit does not let the marker reclaim any object strictly
          before its last recorded access (unless the original model
          already reclaimed it at least as early) — the static mirror
          of a replay landing on recycled memory *)
  sv_apparent_drop_bytes : int;
      (** total predicted retention reduction over all GC points *)
}

val sound : verdict -> bool

val apply : Ir.program -> edit list -> Ir.program
(** Apply edits; insert positions refer to original indices, so a list
    of edits needs no re-indexing. *)

val verify_static : Ir.program -> edit list -> verdict

val suggest :
  Ir.program -> Liveness.t -> Apparent.result -> Shape.t -> Lint.finding -> suggestion option
(** The concrete edit list for a finding, or [None] when the finding
    has no mechanically expressible fix (R4 on genuinely
    pointer-holding objects, for instance). *)

val pp_edit : Format.formatter -> edit -> unit
val pp_suggestion : Format.formatter -> suggestion -> unit
val pp_verdict : Format.formatter -> verdict -> unit
