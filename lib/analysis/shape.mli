(** Bounded access-graph domain over the marker model.

    Summarizes each GC point's heap as a graph whose nodes are bounded
    population summaries — one per (rounded size, atomicity, liveness
    role) — with field-labelled summary edges, in the spirit of
    access-graph heap reference analysis (Khedker/Sanyal/Karkare).
    Alongside the summaries, each graph retains the concrete {e dead
    links}: pointer fields of precise-dead objects lying on an access
    path into precise-live data.  These make the R1/R2 lint rules
    path-sensitive and give the fix generator its exact edit sites. *)

module ISet = Liveness.ISet

type node = {
  sn_bytes : int;
  sn_pointer_free : bool;
  sn_dead : bool;
  sn_count : int;
}

type summary_edge = {
  se_src : node;
  se_dst : node;
  se_fields : int list;
  se_count : int;
}

type link = {
  l_src : int;  (** precise-dead object id *)
  l_field : int;
  l_dst : int;
  l_dst_live : bool;
}

type graph = {
  sh_ordinal : int;
  sh_at_instr : int;
  sh_nodes : node list;
  sh_edges : summary_edge list;
  sh_dead_links : link list;
  sh_barrier_stores : int;
}

type t = {
  graphs : graph list;
  max_dead_links : int;
}

val max_field_labels : int

val build : Ir.program -> Apparent.result -> t

val worst : t -> graph option
(** The graph with the most dead links (ties broken toward the earliest). *)

val self_linked : t -> ((int * bool) * int list) list
(** Group keys [(bytes, pointer_free)] that link to themselves through
    fields somewhere in the run, with the linking field labels. *)

val pp_node : Format.formatter -> node -> unit
val pp_graph : Format.formatter -> graph -> unit
val pp : Format.formatter -> t -> unit
