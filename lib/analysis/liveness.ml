(* Backward liveness dataflow over the IR's locations.

   Locations are machine registers, stack words and global words.  A
   read generates liveness, a write kills it, and — crucially for the
   conservative-retention story — pushing a frame kills every word the
   frame covers: whatever the words held belonged to a previous,
   completed activation, so a value can only be live *into* a frame
   push if nothing reads it before the next write (nothing can, the
   old frame is gone).

   Heap objects get the same treatment at the trace level: an object is
   "used" at a program point if some later instruction reads or writes
   one of its fields.  Walking backward, accesses add the object and
   its allocation removes it (nothing can use an object before it
   exists).  The used-set at a GC point seeds the precise-liveness
   closure: it is exactly the set of objects whose identity the mutator
   still has a handle on, however it stores it. *)

module ISet = Set.Make (Int)

type at_gc = {
  live_regs : ISet.t;
  live_stack : ISet.t;  (** word indices into the stack segment *)
  live_globals : ISet.t;
  used_objects : ISet.t;  (** object ids accessed after this point *)
}

type t = {
  per_gc : at_gc array;  (** indexed by GC-point ordinal, program order *)
  sp_before : int array;
      (** stack-pointer word index before each instruction (index
          [n] = final sp); the live stack is [sp_before.(i) ..
          stack_words - 1] *)
}

let analyze (p : Ir.program) =
  let n = Array.length p.code in
  (* forward pre-pass: the stack pointer before every instruction *)
  let sp_before = Array.make (n + 1) p.stack_words in
  let sp = ref p.stack_words in
  let park_sps = ref [] in
  for i = 0 to n - 1 do
    sp_before.(i) <- !sp;
    (match p.code.(i) with
    | Ir.Frame_push { slots; padding; _ } -> sp := !sp - slots - padding
    | Ir.Frame_pop { slots; padding; _ } -> sp := !sp + slots + padding
    | Ir.Park { words } | Ir.Spawn { words; _ } ->
        park_sps := !sp :: !park_sps;
        sp := !sp - words
    | Ir.Unpark | Ir.Join _ -> (
        match !park_sps with
        | saved :: rest ->
            sp := saved;
            park_sps := rest
        | [] -> ())
    | _ -> ())
  done;
  sp_before.(n) <- !sp;
  (* backward pass *)
  let n_gc = Ir.count_gc_points p in
  let empty =
    {
      live_regs = ISet.empty;
      live_stack = ISet.empty;
      live_globals = ISet.empty;
      used_objects = ISet.empty;
    }
  in
  let per_gc = Array.make (max n_gc 1) empty in
  let regs = ref ISet.empty in
  let stack = ref ISet.empty in
  let globals = ref ISet.empty in
  let used = ref ISet.empty in
  let k = ref (n_gc - 1) in
  let remove_range set lo count =
    let s = ref set in
    for w = lo to lo + count - 1 do
      s := ISet.remove w !s
    done;
    !s
  in
  for i = n - 1 downto 0 do
    match p.code.(i) with
    | Ir.Gc_point _ ->
        per_gc.(!k) <-
          { live_regs = !regs; live_stack = !stack; live_globals = !globals; used_objects = !used };
        decr k
    | Ir.Reg_read { reg } -> regs := ISet.add reg !regs
    | Ir.Reg_write { reg; _ } -> regs := ISet.remove reg !regs
    | Ir.Clear_registers -> regs := ISet.empty
    | Ir.Local_read { word } -> stack := ISet.add word !stack
    | Ir.Local_write { word; _ } | Ir.Spill_write { word; _ } -> stack := ISet.remove word !stack
    | Ir.Stack_clear { lo_word; n_words } -> stack := remove_range !stack lo_word n_words
    | Ir.Frame_push { slots; padding; _ } ->
        (* the frame's words begin a fresh lifetime here *)
        stack := remove_range !stack (sp_before.(i) - slots - padding) (slots + padding)
    | Ir.Frame_pop _ -> ()
    | Ir.Root_read { word } -> globals := ISet.add word !globals
    | Ir.Root_write { word; _ } -> globals := ISet.remove word !globals
    | Ir.Heap_read { obj; _ } | Ir.Heap_write { obj; _ } -> used := ISet.add obj !used
    | Ir.Alloc { obj; _ } -> used := ISet.remove obj !used
    | Ir.Park _ | Ir.Unpark | Ir.Spawn _ | Ir.Join _ -> ()
    (* deliberately not uses: the collector reclaims finalizable
       garbage, and a barrier is bookkeeping about a store already seen *)
    | Ir.Finalizer_attach _ | Ir.Write_barrier _ -> ()
  done;
  if n_gc = 0 then { per_gc = [||]; sp_before } else { per_gc; sp_before }

let at_gc t k = t.per_gc.(k)
let n_gc_points t = Array.length t.per_gc
