(* The mutator-program IR.

   A recorded trace of everything the mutator did that a conservative
   marker could observe: allocations, register and stack traffic, frame
   lifetimes, heap data-flow, global-root updates, and the collection
   points themselves.  Addresses are abstracted: stack and global words
   become segment-relative word indices, heap objects become dense ids
   (so address reuse after a sweep cannot conflate two objects), and
   every written value carries both its raw 32-bit image and, when the
   value was an object address at write time, the id it referred to. *)

type value = {
  raw : int;  (** the 32-bit word as written *)
  obj : int option;
      (** the object id the raw value pointed (possibly interior) to at
          write time, if any — the semantic edge *)
}

let vint raw = { raw; obj = None }

type measurement = {
  m_collections : int;
  m_live_objects : int;
  m_live_bytes : int;
}

type instr =
  | Alloc of { obj : int; base : int; bytes : int; pointer_free : bool }
      (** [bytes] is the size-class-rounded extent the marker scans;
          [base] the concrete address (reused bases get fresh ids) *)
  | Reg_write of { reg : int; value : value }
  | Reg_read of { reg : int }
  | Frame_push of { slots : int; padding : int; cleared : bool }
  | Frame_pop of { slots : int; padding : int; cleared : bool }
  | Local_write of { word : int; value : value }
  | Local_read of { word : int }
  | Spill_write of { word : int; value : value }
  | Stack_clear of { lo_word : int; n_words : int }
  | Heap_write of { obj : int; field : int; value : value }
  | Heap_read of { obj : int; field : int }
  | Root_write of { word : int; value : value }
  | Root_read of { word : int }
  | Gc_point of { measured : measurement option }
  | Park of { words : int }
  | Unpark
  | Clear_registers
  | Finalizer_attach of { obj : int; token : int }
      (** a finalizer was registered for [obj]; deliberately {e not} a
          use — the collector still reclaims finalizable garbage, it
          just runs the finalizer first *)
  | Spawn of { thread : int; words : int }
      (** a child thread starts with [words] stack words of its own;
          like [Park], the spawning frame region stays scannable while
          the child runs *)
  | Join of { thread : int }  (** the child thread ends; its stack region dies *)
  | Write_barrier of { obj : int; field : int }
      (** generational write-barrier event: a pointer store into [obj]
          was card-marked.  Inert for liveness; consumed by shape and
          reported for the generational backend. *)

type program = {
  n_registers : int;
  stack_words : int;  (** stack segment size; word 0 is the lowest address *)
  globals_words : int;
  interior_pointers : bool;
  code : instr array;
}

let word_bytes = 4

let count_gc_points p =
  Array.fold_left
    (fun acc i -> match i with Gc_point _ -> acc + 1 | _ -> acc)
    0 p.code

let count_allocs p =
  Array.fold_left (fun acc i -> match i with Alloc _ -> acc + 1 | _ -> acc) 0 p.code

let pp_value ppf v =
  match v.obj with
  | None -> Format.fprintf ppf "%#x" v.raw
  | Some id -> Format.fprintf ppf "%#x(->#%d)" v.raw id

let pp_instr ppf = function
  | Alloc { obj; base; bytes; pointer_free } ->
      Format.fprintf ppf "alloc #%d @@%#x %dB%s" obj base bytes
        (if pointer_free then " atomic" else "")
  | Reg_write { reg; value } -> Format.fprintf ppf "r%d := %a" reg pp_value value
  | Reg_read { reg } -> Format.fprintf ppf "read r%d" reg
  | Frame_push { slots; padding; cleared } ->
      Format.fprintf ppf "push frame %d+%d%s" slots padding (if cleared then " cleared" else "")
  | Frame_pop { slots; padding; cleared } ->
      Format.fprintf ppf "pop frame %d+%d%s" slots padding (if cleared then " cleared" else "")
  | Local_write { word; value } -> Format.fprintf ppf "stack[%d] := %a" word pp_value value
  | Local_read { word } -> Format.fprintf ppf "read stack[%d]" word
  | Spill_write { word; value } -> Format.fprintf ppf "spill[%d] := %a" word pp_value value
  | Stack_clear { lo_word; n_words } ->
      Format.fprintf ppf "clear stack[%d..%d]" lo_word (lo_word + n_words - 1)
  | Heap_write { obj; field; value } ->
      Format.fprintf ppf "#%d[%d] := %a" obj field pp_value value
  | Heap_read { obj; field } -> Format.fprintf ppf "read #%d[%d]" obj field
  | Root_write { word; value } -> Format.fprintf ppf "global[%d] := %a" word pp_value value
  | Root_read { word } -> Format.fprintf ppf "read global[%d]" word
  | Gc_point { measured = Some m } ->
      Format.fprintf ppf "gc #%d (measured %d objs / %d B)" m.m_collections m.m_live_objects
        m.m_live_bytes
  | Gc_point { measured = None } -> Format.fprintf ppf "gc"
  | Park { words } -> Format.fprintf ppf "park %d words" words
  | Unpark -> Format.fprintf ppf "unpark"
  | Clear_registers -> Format.fprintf ppf "clear registers"
  | Finalizer_attach { obj; token } -> Format.fprintf ppf "finalizer #%d (token %d)" obj token
  | Spawn { thread; words } -> Format.fprintf ppf "spawn t%d (%d words)" thread words
  | Join { thread } -> Format.fprintf ppf "join t%d" thread
  | Write_barrier { obj; field } -> Format.fprintf ppf "barrier #%d[%d]" obj field

let pp ppf p =
  Format.fprintf ppf "program: %d instrs, %d allocs, %d gc points, %d regs, %d stack words"
    (Array.length p.code) (count_allocs p) (count_gc_points p) p.n_registers p.stack_words
