(* Verified fix suggestions: the exact IR edits that close a lint
   finding's retention gap.

   Every suggestion is a list of mechanical edits against the recorded
   program — a link-field clear placed immediately after an object's
   last access, a [Stack_clear] placed immediately before a GC point,
   or an atomic re-allocation — chosen so the edit provably cannot
   change what the program computes:

   - a heap-link clear is only emitted for objects that are
     precise-dead at every later GC point and never accessed again, so
     no read observes the cleared field and the precise closure (which
     never traverses out of precise-dead objects) is untouched;
   - a stack clear only covers words that are neither dataflow-live at
     that GC point nor read again before being overwritten (computed by
     a dedicated backward pass that, unlike liveness, does *not* treat
     a frame push as a kill — re-reading a recycled slot through a
     fresh frame still observes the old value);
   - an atomic re-allocation is only emitted for objects that never
     held a pointer, so the semantic closure never traverses them
     anyway.

   [verify_static] then checks the claim wholesale by re-running the
   liveness + marker pipeline on the edited program: precise sets must
   be identical at every GC point, the apparent sets must not grow, and
   the full read stream must be unchanged.  The dynamic half of the
   verification — replaying both programs through the real collector
   and confirming measured retention drops — lives in {!Replay}. *)

module ISet = Liveness.ISet

type edit =
  | Insert of { at : int; instr : Ir.instr }  (** insert before original index [at] *)
  | Make_atomic of { obj : int }  (** flip the object's [Alloc] to pointer-free *)

type suggestion = {
  fx_rule : string;
  fx_title : string;
  fx_edits : edit list;
  fx_rationale : string;
}

type verdict = {
  sv_gc_points : int;
  sv_precise_preserved : bool;
  sv_apparent_not_worse : bool;
  sv_reads_preserved : bool;
  sv_no_premature_free : bool;
      (** no object becomes reclaimable before its last access because
          of the edit — the trace proves later accesses happened but
          not which root serviced them, so an edit that lets the marker
          drop a still-accessed object would make a real replay land on
          recycled memory *)
  sv_apparent_drop_bytes : int;
      (** total apparent-retention reduction over all GC points *)
}

let sound v =
  v.sv_precise_preserved && v.sv_apparent_not_worse && v.sv_reads_preserved
  && v.sv_no_premature_free

let apply (p : Ir.program) edits =
  let n = Array.length p.Ir.code in
  let inserts = Array.make (n + 1) [] in
  let atomics = Hashtbl.create 8 in
  List.iter
    (function
      | Insert { at; instr } ->
          let at = max 0 (min n at) in
          inserts.(at) <- instr :: inserts.(at)
      | Make_atomic { obj } -> Hashtbl.replace atomics obj ())
    edits;
  let out = ref [] in
  for i = 0 to n - 1 do
    List.iter (fun instr -> out := instr :: !out) (List.rev inserts.(i));
    let instr =
      match p.Ir.code.(i) with
      | Ir.Alloc a when Hashtbl.mem atomics a.obj -> Ir.Alloc { a with pointer_free = true }
      | other -> other
    in
    out := instr :: !out
  done;
  List.iter (fun instr -> out := instr :: !out) (List.rev inserts.(n));
  { p with Ir.code = Array.of_list (List.rev !out) }

(* ------------------------------------------------------------------ *)
(* Static verification                                                 *)

(* The observable surface of a program at the IR level: the sequence of
   values its reads return.  A forward mirror of the machine state —
   same update rules as the marker model, no closures. *)
let read_stream (p : Ir.program) =
  let regs = Array.make p.Ir.n_registers (Ir.vint 0) in
  let stack = Array.make p.Ir.stack_words (Ir.vint 0) in
  let globals = Array.make p.Ir.globals_words (Ir.vint 0) in
  let fields : (int, Ir.value array) Hashtbl.t = Hashtbl.create 1024 in
  let reads = ref [] in
  let note (v : Ir.value) = reads := (v.Ir.raw, v.Ir.obj) :: !reads in
  Array.iter
    (fun instr ->
      match instr with
      | Ir.Alloc { obj; bytes; _ } ->
          Hashtbl.replace fields obj (Array.make (max 1 (bytes / Ir.word_bytes)) (Ir.vint 0))
      | Ir.Reg_write { reg; value } -> if reg < p.Ir.n_registers then regs.(reg) <- value
      | Ir.Reg_read { reg } -> if reg < p.Ir.n_registers then note regs.(reg)
      | Ir.Clear_registers -> Array.fill regs 0 p.Ir.n_registers (Ir.vint 0)
      | Ir.Local_write { word; value } | Ir.Spill_write { word; value } ->
          if word >= 0 && word < p.Ir.stack_words then stack.(word) <- value
      | Ir.Local_read { word } ->
          if word >= 0 && word < p.Ir.stack_words then note stack.(word)
      | Ir.Stack_clear { lo_word; n_words } ->
          for w = max 0 lo_word to min (p.Ir.stack_words - 1) (lo_word + n_words - 1) do
            stack.(w) <- Ir.vint 0
          done
      | Ir.Heap_write { obj; field; value } -> (
          match Hashtbl.find_opt fields obj with
          | Some a when field >= 0 && field < Array.length a -> a.(field) <- value
          | _ -> ())
      | Ir.Heap_read { obj; field } -> (
          match Hashtbl.find_opt fields obj with
          | Some a when field >= 0 && field < Array.length a -> note a.(field)
          | _ -> note (Ir.vint 0))
      | Ir.Root_write { word; value } ->
          if word >= 0 && word < p.Ir.globals_words then globals.(word) <- value
      | Ir.Root_read { word } ->
          if word >= 0 && word < p.Ir.globals_words then note globals.(word)
      | Ir.Frame_push _ | Ir.Frame_pop _ | Ir.Gc_point _ | Ir.Park _ | Ir.Unpark
      | Ir.Spawn _ | Ir.Join _ | Ir.Finalizer_attach _ | Ir.Write_barrier _ ->
          ())
    p.Ir.code;
  List.rev !reads

let last_access_table (p : Ir.program) =
  let t : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  Array.iteri
    (fun i instr ->
      match instr with
      | Ir.Alloc { obj; _ }
      | Ir.Heap_read { obj; _ }
      | Ir.Heap_write { obj; _ }
      | Ir.Finalizer_attach { obj; _ }
      | Ir.Write_barrier { obj; _ } ->
          Hashtbl.replace t obj i
      | _ -> ())
    p.Ir.code;
  t

let verify_static (p : Ir.program) edits =
  let fixed = apply p edits in
  let analyze q =
    let lv = Liveness.analyze q in
    Apparent.analyze q lv
  in
  let before = analyze p and after = analyze fixed in
  let sb = before.Apparent.snapshots and sa = after.Apparent.snapshots in
  let sv_gc_points = List.length sb in
  let same_length = List.length sa = sv_gc_points in
  let precise_preserved =
    same_length
    && List.for_all2
         (fun (b : Apparent.gc_snapshot) (a : Apparent.gc_snapshot) ->
           ISet.equal b.Apparent.precise a.Apparent.precise)
         sb sa
  in
  let apparent_not_worse =
    same_length
    && List.for_all2
         (fun (b : Apparent.gc_snapshot) (a : Apparent.gc_snapshot) ->
           ISet.subset a.Apparent.apparent b.Apparent.apparent)
         sb sa
  in
  let drop =
    if not same_length then 0
    else
      List.fold_left2
        (fun acc (b : Apparent.gc_snapshot) (a : Apparent.gc_snapshot) ->
          acc + (b.Apparent.apparent_bytes - a.Apparent.apparent_bytes))
        0 sb sa
  in
  (* Ordinals align whenever precise sets are preserved (same GC
     structure), so premature frees are compared ordinal by ordinal:
     the edit must not let the model sweep reclaim an object strictly
     before its last recorded access unless the original model already
     reclaimed it at least as early. *)
  let no_premature_free =
    (not same_length)
    ||
    let last = last_access_table p in
    let at_instr = Array.of_list (List.map (fun s -> s.Apparent.at_instr) sb) in
    Hashtbl.fold
      (fun id (oa : Apparent.obj_state) ok ->
        ok
        &&
        match oa.Apparent.o_freed_at with
        | None -> true
        | Some ka -> (
            let accessed_later =
              match Hashtbl.find_opt last id with
              | Some l -> ka < Array.length at_instr && l > at_instr.(ka)
              | None -> false
            in
            (not accessed_later)
            ||
            match Hashtbl.find_opt before.Apparent.objects id with
            | Some ob -> ( match ob.Apparent.o_freed_at with Some kb -> kb <= ka | None -> false)
            | None -> false))
      after.Apparent.objects true
  in
  {
    sv_gc_points;
    sv_precise_preserved = precise_preserved;
    sv_apparent_not_worse = apparent_not_worse;
    sv_reads_preserved = read_stream p = read_stream fixed;
    sv_no_premature_free = no_premature_free;
    sv_apparent_drop_bytes = drop;
  }

(* ------------------------------------------------------------------ *)
(* Suggestion generation                                               *)

(* Last instruction index that mentions the object at all (allocation,
   field traffic, finalizer attachment, barrier).  Clears are inserted
   just after it, so nothing can observe them. *)
let last_access (p : Ir.program) id =
  let last = ref (-1) in
  Array.iteri
    (fun i instr ->
      match instr with
      | Ir.Alloc { obj; _ }
      | Ir.Heap_read { obj; _ }
      | Ir.Heap_write { obj; _ }
      | Ir.Finalizer_attach { obj; _ }
      | Ir.Write_barrier { obj; _ } ->
          if obj = id then last := i
      | _ -> ())
    p.Ir.code;
  !last

(* An object may have its links cleared after [i] only if no later GC
   point considers it precise-live: clearing a precise-live object's
   fields would change what an ideal collector retains. *)
let precise_dead_after (r : Apparent.result) id i =
  List.for_all
    (fun (s : Apparent.gc_snapshot) ->
      s.Apparent.at_instr <= i || not (ISet.mem id s.Apparent.precise))
    r.Apparent.snapshots

let clear_edits (p : Ir.program) (r : Apparent.result) id =
  match Hashtbl.find_opt r.Apparent.objects id with
  | None -> []
  | Some o ->
      if o.Apparent.o_pointer_free then []
      else
        let last = last_access p id in
        if last < 0 || not (precise_dead_after r id last) then []
        else
          Array.to_list o.Apparent.o_fields
          |> List.mapi (fun f (v : Ir.value) -> (f, v))
          |> List.filter_map (fun (f, (v : Ir.value)) ->
                 if v.Ir.raw = 0 then None
                 else
                   Some
                     (Insert
                        {
                          at = last + 1;
                          instr = Ir.Heap_write { obj = id; field = f; value = Ir.vint 0 };
                        }))

(* Stack-clear targets: for each GC point, the scanned words that are
   neither dataflow-live there nor read again before being overwritten.
   The latter set deliberately ignores frame-push kills — a fresh
   frame's slot read before its first write still observes the old
   value, so clearing it would change that read. *)
let readable_per_gc (p : Ir.program) =
  let n = Array.length p.Ir.code in
  let n_gc = Ir.count_gc_points p in
  let out = Array.make (max n_gc 1) ISet.empty in
  let s = ref ISet.empty in
  let k = ref (n_gc - 1) in
  for i = n - 1 downto 0 do
    match p.Ir.code.(i) with
    | Ir.Gc_point _ ->
        out.(!k) <- !s;
        decr k
    | Ir.Local_read { word } -> s := ISet.add word !s
    | Ir.Local_write { word; _ } | Ir.Spill_write { word; _ } -> s := ISet.remove word !s
    | Ir.Stack_clear { lo_word; n_words } ->
        for w = lo_word to lo_word + n_words - 1 do
          s := ISet.remove w !s
        done
    | _ -> ()
  done;
  out

(* The same read-before-overwrite pass for registers. *)
let reg_readable_per_gc (p : Ir.program) =
  let n = Array.length p.Ir.code in
  let n_gc = Ir.count_gc_points p in
  let out = Array.make (max n_gc 1) ISet.empty in
  let s = ref ISet.empty in
  let k = ref (n_gc - 1) in
  for i = n - 1 downto 0 do
    match p.Ir.code.(i) with
    | Ir.Gc_point _ ->
        out.(!k) <- !s;
        decr k
    | Ir.Reg_read { reg } -> s := ISet.add reg !s
    | Ir.Reg_write { reg; _ } -> s := ISet.remove reg !s
    | Ir.Clear_registers -> s := ISet.empty
    | _ -> ()
  done;
  out

module IMap = Map.Make (Int)

(* Hygiene edits: before each GC point, zero the scanned stack words
   and registers that are dead, never read again, and — crucially — do
   not conservatively retain anything the program still accesses.  The
   trace only proves an access *happened*; it does not say which root
   kept the object alive for it.  If the stale word we are about to
   clear was that root, the real collector would free the object and a
   later access would land on recycled memory.  So each candidate's
   value is chased through the current heap image, and clearing is
   vetoed when anything reachable from it is accessed after this GC
   point. *)
let hygiene_edits (p : Ir.program) (lv : Liveness.t) (r : Apparent.result) =
  let readable = readable_per_gc p in
  let reg_readable = reg_readable_per_gc p in
  let last = last_access_table p in
  let regs = Array.make (max 1 p.Ir.n_registers) (Ir.vint 0) in
  let stack = Array.make (max 1 p.Ir.stack_words) (Ir.vint 0) in
  let fields : (int, Ir.value array) Hashtbl.t = Hashtbl.create 1024 in
  let by_base = ref IMap.empty in
  let resolve raw =
    if raw = 0 then None
    else
      match IMap.find_last_opt (fun b -> b <= raw) !by_base with
      | Some (b, (id, bytes)) when raw < b + bytes -> Some id
      | _ -> None
  in
  let hazard at_instr (v : Ir.value) =
    let seen = Hashtbl.create 16 in
    let rec go id =
      (not (Hashtbl.mem seen id))
      && begin
           Hashtbl.add seen id ();
           (match Hashtbl.find_opt last id with Some l -> l > at_instr | None -> false)
           || (match Hashtbl.find_opt fields id with
              | Some a -> Array.exists vhaz a
              | None -> false)
         end
    and vhaz (v : Ir.value) =
      (match v.Ir.obj with Some id -> go id | None -> false)
      || (match resolve v.Ir.raw with Some id -> go id | None -> false)
    in
    vhaz v
  in
  let snaps = Array.of_list r.Apparent.snapshots in
  let edits = ref [] in
  let ordinal = ref 0 in
  Array.iteri
    (fun i instr ->
      match instr with
      | Ir.Alloc { obj; bytes; _ } ->
          Hashtbl.replace fields obj (Array.make (max 1 (bytes / Ir.word_bytes)) (Ir.vint 0));
          (match Hashtbl.find_opt r.Apparent.objects obj with
          | Some o -> by_base := IMap.add o.Apparent.o_base (obj, o.Apparent.o_bytes) !by_base
          | None -> ())
      | Ir.Reg_write { reg; value } -> if reg < Array.length regs then regs.(reg) <- value
      | Ir.Clear_registers -> Array.fill regs 0 (Array.length regs) (Ir.vint 0)
      | Ir.Local_write { word; value } | Ir.Spill_write { word; value } ->
          if word >= 0 && word < p.Ir.stack_words then stack.(word) <- value
      | Ir.Stack_clear { lo_word; n_words } ->
          for w = max 0 lo_word to min (p.Ir.stack_words - 1) (lo_word + n_words - 1) do
            stack.(w) <- Ir.vint 0
          done
      | Ir.Frame_push { slots; padding; cleared } ->
          if cleared then begin
            let sp = lv.Liveness.sp_before.(i) in
            for w = max 0 (sp - slots - padding) to min (p.Ir.stack_words - 1) (sp - 1) do
              stack.(w) <- Ir.vint 0
            done
          end
      | Ir.Heap_write { obj; field; value } -> (
          match Hashtbl.find_opt fields obj with
          | Some a when field >= 0 && field < Array.length a -> a.(field) <- value
          | _ -> ())
      | Ir.Gc_point _ when !ordinal < Array.length snaps ->
          let k = !ordinal in
          incr ordinal;
          let s = snaps.(k) in
          let live = Liveness.at_gc lv k in
          let unsafe = if k < Array.length readable then readable.(k) else ISet.empty in
          let clearable w =
            w >= s.Apparent.sp_word
            && w < p.Ir.stack_words
            && (not (ISet.mem w live.Liveness.live_stack))
            && (not (ISet.mem w unsafe))
            && (stack.(w).Ir.raw = 0 || not (hazard s.Apparent.at_instr stack.(w)))
          in
          (* contiguous runs of clearable scanned words *)
          let run_start = ref None in
          let flush upto =
            match !run_start with
            | Some lo ->
                run_start := None;
                edits :=
                  Insert
                    {
                      at = s.Apparent.at_instr;
                      instr = Ir.Stack_clear { lo_word = lo; n_words = upto - lo };
                    }
                  :: !edits
            | None -> ()
          in
          for w = s.Apparent.sp_word to p.Ir.stack_words - 1 do
            if clearable w then (if !run_start = None then run_start := Some w) else flush w
          done;
          flush p.Ir.stack_words;
          let reg_unsafe =
            if k < Array.length reg_readable then reg_readable.(k) else ISet.empty
          in
          for reg = 0 to p.Ir.n_registers - 1 do
            if
              (not (ISet.mem reg live.Liveness.live_regs))
              && (not (ISet.mem reg reg_unsafe))
              && regs.(reg).Ir.raw <> 0
              && not (hazard s.Apparent.at_instr regs.(reg))
            then
              edits :=
                Insert
                  {
                    at = s.Apparent.at_instr;
                    instr = Ir.Reg_write { reg; value = Ir.vint 0 };
                  }
                :: !edits
          done
      | _ -> ())
    p.Ir.code;
  List.rev !edits

(* Objects that are precise-dead somewhere and participate in the
   finding's structure: the clear-target set for R1/R2. *)
let dead_members (r : Apparent.result) keep =
  let dead = ref ISet.empty in
  List.iter
    (fun (s : Apparent.gc_snapshot) ->
      ISet.iter
        (fun id -> if (not (ISet.mem id s.Apparent.precise)) && keep id then dead := ISet.add id !dead)
        s.Apparent.apparent)
    r.Apparent.snapshots;
  !dead

let suggest (p : Ir.program) (lv : Liveness.t) (r : Apparent.result) (shape : Shape.t)
    (f : Lint.finding) =
  let obj id = Hashtbl.find_opt r.Apparent.objects id in
  match f.Lint.rule with
  | "R1" ->
      (* clear the embedded links of every precise-dead member of a
         self-linked group, severing the intra-group blast paths *)
      let self = Shape.self_linked shape in
      let in_self_group id =
        match obj id with
        | Some o ->
            List.mem_assoc (o.Apparent.o_bytes, o.Apparent.o_pointer_free) self
            && not o.Apparent.o_pointer_free
        | None -> false
      in
      let targets = dead_members r in_self_group in
      let edits = List.concat_map (clear_edits p r) (ISet.elements targets) in
      if edits = [] then None
      else
        Some
          {
            fx_rule = "R1";
            fx_title = "clear embedded links of dead structure members";
            fx_edits = edits;
            fx_rationale =
              Printf.sprintf
                "%d dead members of the self-linked group never get their \
                 embedded links cleared; zeroing each field right after the \
                 member's last access cuts the blast radius a false reference \
                 can drag along."
                (ISet.cardinal targets);
          }
  | "R2" ->
      (* clear the dead links the access graphs exhibit: every outgoing
         field of a dead-feeding object *)
      let srcs =
        List.fold_left
          (fun acc (g : Shape.graph) ->
            List.fold_left
              (fun acc (l : Shape.link) -> ISet.add l.Shape.l_src acc)
              acc g.Shape.sh_dead_links)
          ISet.empty shape.Shape.graphs
      in
      let edits = List.concat_map (clear_edits p r) (ISet.elements srcs) in
      if edits = [] then None
      else
        Some
          {
            fx_rule = "R2";
            fx_title = "clear links when dequeuing";
            fx_edits = edits;
            fx_rationale =
              Printf.sprintf
                "%d dequeued objects still point into the structure; zeroing \
                 each link right after the object's last access is exactly \
                 the paper's clear-on-dequeue advice, applied post hoc."
                (ISet.cardinal srcs);
          }
  | "R5" ->
      let edits = hygiene_edits p lv r in
      if edits = [] then None
      else
        Some
          {
            fx_rule = "R5";
            fx_title = "clear dead stack words and registers before collections";
            fx_edits = edits;
            fx_rationale =
              "before each GC point, zero the scanned stack words and \
               registers that are neither dataflow-live nor read again and \
               that retain nothing the program still touches — the section \
               3.1 stack-clearing mitigation placed at exactly the points \
               where the marker looks.";
          }
  | "R3" | "R4" ->
      (* atomic re-allocation for objects that never held a pointer *)
      let group_bytes =
        match f.Lint.example_obj with
        | Some id -> ( match obj id with Some o -> Some o.Apparent.o_bytes | None -> None)
        | None -> None
      in
      let edits =
        Hashtbl.fold
          (fun id (o : Apparent.obj_state) acc ->
            let in_group =
              match group_bytes with Some b -> o.Apparent.o_bytes = b | None -> true
            in
            if in_group && (not o.Apparent.o_pointer_free) && not o.Apparent.o_ever_held_ptr
            then Make_atomic { obj = id } :: acc
            else acc)
          r.Apparent.objects []
      in
      if edits = [] then None
      else
        Some
          {
            fx_rule = f.Lint.rule;
            fx_title = "allocate pointer-free data atomically";
            fx_edits = edits;
            fx_rationale =
              Printf.sprintf
                "%d objects never held a pointer over the whole trace; \
                 allocating them atomic removes their contents from the scan \
                 and from the false-reference pool."
                (List.length edits);
          }
  | _ -> None

let pp_edit ppf = function
  | Insert { at; instr } -> Format.fprintf ppf "insert @@%d: %a" at Ir.pp_instr instr
  | Make_atomic { obj } -> Format.fprintf ppf "allocate #%d atomic" obj

let pp_suggestion ppf s =
  Format.fprintf ppf "@[<v2>fix [%s] %s (%d edit%s)@,@[<hov>%a@]@]" s.fx_rule s.fx_title
    (List.length s.fx_edits)
    (if List.length s.fx_edits = 1 then "" else "s")
    Fmt.text s.fx_rationale

let pp_verdict ppf v =
  Format.fprintf ppf
    "static: precise %s, apparent %s, reads %s, frees %s, -%dB apparent over %d GC point%s"
    (if v.sv_precise_preserved then "preserved" else "CHANGED")
    (if v.sv_apparent_not_worse then "not worse" else "GREW")
    (if v.sv_reads_preserved then "preserved" else "CHANGED")
    (if v.sv_no_premature_free then "safe" else "PREMATURE")
    v.sv_apparent_drop_bytes v.sv_gc_points
    (if v.sv_gc_points = 1 then "" else "s")
