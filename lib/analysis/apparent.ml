(* Forward abstract interpretation of an IR program, modelling exactly
   what the conservative marker sees at each GC point.

   The pass mirrors the machine: register file, stack image (with the
   provenance of every word — who wrote it, under which frame
   activation), global words, and a heap of abstract objects with their
   current field values and concrete address ranges.  At each GC point
   it computes:

   - the APPARENT live set: the closure, over raw word values resolved
     against the current address map, of every scanned location —
     registers, the live stack [sp..top], all globals.  This is the
     paper's collector, replayed abstractly.
   - the PRECISE live set: the closure, over semantic pointer edges
     only, of the dataflow-live locations plus the objects the mutator
     demonstrably accesses later in the trace.  This is what an ideal
     liveness-aware precise collector would keep.
   - a classification of every spurious root (a scanned word that
     resolves to an object without being dataflow-live): stale
     re-exposed slots, dead locals, frame padding, allocator spill
     residue, dead registers, stale globals, parked stack — the
     paper's section 3/3.1 taxonomy.

   Objects the apparent closure misses are freed in the model, exactly
   when the real collector would sweep them, so the address map tracks
   address reuse faithfully. *)

module ISet = Liveness.ISet
module IMap = Map.Make (Int)

type root_class =
  | Intended
  | Dead_local  (** written under the current activation, never read again *)
  | Stale_slot  (** left by a previous activation, re-exposed uninitialized *)
  | Padding  (** never-written pad words of the covering frame *)
  | Spill_residue  (** allocator scratch the allocator did not clear *)
  | Dead_register
  | Stale_global
  | Parked  (** under a parked (blocked-thread) stack region *)

let class_name = function
  | Intended -> "intended"
  | Dead_local -> "dead local"
  | Stale_slot -> "stale slot"
  | Padding -> "frame padding"
  | Spill_residue -> "spill residue"
  | Dead_register -> "dead register"
  | Stale_global -> "stale global"
  | Parked -> "parked stack"

type spurious_root = {
  sr_class : root_class;
  sr_where : string;
  sr_raw : int;
  sr_target : int;  (** object id the raw value resolves to *)
}

type structure_stats = {
  g_bytes : int;
  g_pointer_free : bool;
  g_count : int;
  g_mean_intra_degree : float;
      (** mean semantic out-edges per member into the same group *)
  g_mean_blast : float;
      (** mean fraction of the apparent heap reachable from one member *)
}

type gc_snapshot = {
  ordinal : int;
  at_instr : int;
  sp_word : int;
  measured : Ir.measurement option;
  apparent : ISet.t;
  precise : ISet.t;
  apparent_bytes : int;
  precise_bytes : int;
  spurious : spurious_root list;
  stack_excess : int;
      (** apparent objects retained only through stack garbage that
          clearing would remove — stale slots, frame padding, spill
          residue, dead registers (dead locals in live frames are
          excluded: no clearing scheme reclaims those) *)
  dead_feeding_live : int;
      (** precise-dead objects from which precise-live data is
          reachable — the uncleared-link signature of section 4 *)
  dead_feeding_example : int option;
  structures : structure_stats list;
  edges : (int * int * int) list;
      (** semantic pointer edges [(src, field, dst)] out of apparent
          objects at this point — the raw material of access graphs *)
  unresolved : ISet.t;
      (** nonzero raw words the marker scanned (or traversed into) that
          resolved to no object — exactly the false references the real
          collector would blacklist *)
}

type obj_state = {
  o_id : int;
  o_base : int;
  o_bytes : int;
  o_pointer_free : bool;
  o_fields : Ir.value array;
  mutable o_freed : bool;
  mutable o_freed_at : int option;  (** GC ordinal of the model sweep *)
  mutable o_ever_held_ptr : bool;
}

type result = {
  snapshots : gc_snapshot list;
  objects : (int, obj_state) Hashtbl.t;
  n_objects : int;
}

type prov =
  | P_zero
  | P_local of int  (** frame generation the write happened under *)
  | P_spill

type frame_info = {
  fr_lo : int;
  fr_slots : int;
  fr_padding : int;
  fr_gen : int;
}

let analyze (p : Ir.program) (lv : Liveness.t) =
  let regs = Array.make p.n_registers (Ir.vint 0) in
  let stack = Array.make p.stack_words (Ir.vint 0) in
  let prov = Array.make p.stack_words P_zero in
  let globals = Array.make p.globals_words (Ir.vint 0) in
  let objects : (int, obj_state) Hashtbl.t = Hashtbl.create 4096 in
  let addr_map = ref IMap.empty in
  let frames = ref ([] : frame_info list) in
  let gen = ref 0 in
  let snapshots = ref [] in
  let n_objects = ref 0 in

  let covering w =
    List.find_opt (fun f -> f.fr_lo <= w && w < f.fr_lo + f.fr_slots + f.fr_padding) !frames
  in
  let obj id = Hashtbl.find_opt objects id in
  let resolve raw =
    if raw = 0 then None
    else
      match IMap.find_last_opt (fun b -> b <= raw) !addr_map with
      | Some (b, (id, bytes)) when raw < b + bytes ->
          if raw = b || p.interior_pointers then Some id else None
      | _ -> None
  in
  (* closure over raw values resolved against the current address map:
     the conservative marker.  [misses], when given, accumulates the
     nonzero raws that resolve to nothing — the marker's false
     references, which the real collector blacklists. *)
  let numeric_closure ?misses seeds =
    let seen = ref ISet.empty in
    let queue = Queue.create () in
    let consider raw =
      match resolve raw with
      | Some id ->
          if not (ISet.mem id !seen) then begin
            seen := ISet.add id !seen;
            Queue.add id queue
          end
      | None -> (
          match misses with
          | Some m when raw <> 0 -> m := ISet.add raw !m
          | _ -> ())
    in
    List.iter consider seeds;
    while not (Queue.is_empty queue) do
      let id = Queue.take queue in
      match obj id with
      | Some o when not o.o_pointer_free ->
          Array.iter (fun (v : Ir.value) -> consider v.raw) o.o_fields
      | _ -> ()
    done;
    !seen
  in
  (* closure over semantic edges only, skipping freed objects: the
     ideal precise collector *)
  let semantic_closure seed_ids =
    let seen = ref ISet.empty in
    let queue = Queue.create () in
    let visit id =
      match obj id with
      | Some o when (not o.o_freed) && not (ISet.mem id !seen) ->
          seen := ISet.add id !seen;
          Queue.add id queue
      | _ -> ()
    in
    List.iter visit seed_ids;
    while not (Queue.is_empty queue) do
      let id = Queue.take queue in
      match obj id with
      | Some o when not o.o_pointer_free ->
          Array.iter
            (fun (v : Ir.value) -> match v.obj with Some t -> visit t | None -> ())
            o.o_fields
      | _ -> ()
    done;
    !seen
  in
  let bytes_of set =
    ISet.fold (fun id acc -> match obj id with Some o -> acc + o.o_bytes | None -> acc) set 0
  in

  let classify_stack_word (live : Liveness.at_gc) w =
    if ISet.mem w live.Liveness.live_stack then Intended
    else
      match covering w with
      | None -> Parked
      | Some f ->
          if w < f.fr_lo + f.fr_slots then begin
            match prov.(w) with
            | P_spill -> Spill_residue
            | P_local g when g = f.fr_gen -> Dead_local
            | P_local _ | P_zero -> Stale_slot
          end
          else Padding
  in

  let structure_stats apparent =
    (* group apparent objects by (rounded size, atomicity) — the trace
       analogue of "type" — and measure how tightly each group links to
       itself and how much one member drags along *)
    let groups = Hashtbl.create 8 in
    ISet.iter
      (fun id ->
        match obj id with
        | Some o ->
            let key = (o.o_bytes, o.o_pointer_free) in
            Hashtbl.replace groups key (id :: (Option.value (Hashtbl.find_opt groups key) ~default:[]))
        | None -> ())
      apparent;
    let total = float_of_int (max 1 (ISet.cardinal apparent)) in
    Hashtbl.fold
      (fun (g_bytes, g_pointer_free) members acc ->
        let n = List.length members in
        if n < 16 then acc
        else begin
          let member_set = List.fold_left (fun s id -> ISet.add id s) ISet.empty members in
          let intra =
            List.fold_left
              (fun acc id ->
                match obj id with
                | Some o when not o.o_pointer_free ->
                    acc
                    + Array.fold_left
                        (fun c (v : Ir.value) ->
                          match v.obj with
                          | Some t when ISet.mem t member_set -> c + 1
                          | _ -> c)
                        0 o.o_fields
                | _ -> acc)
              0 members
          in
          let sorted = List.sort compare members in
          let arr = Array.of_list sorted in
          let samples =
            List.sort_uniq compare
              (List.init 5 (fun j -> arr.(j * (Array.length arr - 1) / 4)))
          in
          let blast =
            List.fold_left
              (fun acc id ->
                acc +. (float_of_int (ISet.cardinal (semantic_closure [ id ])) /. total))
              0. samples
            /. float_of_int (List.length samples)
          in
          {
            g_bytes;
            g_pointer_free;
            g_count = n;
            g_mean_intra_degree = float_of_int intra /. float_of_int n;
            g_mean_blast = blast;
          }
          :: acc
        end)
      groups []
  in

  let n = Array.length p.code in
  let ordinal = ref 0 in
  for i = 0 to n - 1 do
    match p.code.(i) with
    | Ir.Alloc { obj = id; base; bytes; pointer_free } ->
        let o =
          {
            o_id = id;
            o_base = base;
            o_bytes = bytes;
            o_pointer_free = pointer_free;
            o_fields = Array.make (max 1 (bytes / Ir.word_bytes)) (Ir.vint 0);
            o_freed = false;
            o_freed_at = None;
            o_ever_held_ptr = false;
          }
        in
        Hashtbl.replace objects id o;
        incr n_objects;
        (* evict anything the model still holds in the reused range *)
        let rec purge () =
          match IMap.find_last_opt (fun b -> b < base + bytes) !addr_map with
          | Some (b, (old_id, old_bytes)) when b + old_bytes > base ->
              (match obj old_id with
              | Some old -> old.o_freed <- true
              | None -> ());
              addr_map := IMap.remove b !addr_map;
              purge ()
          | _ -> ()
        in
        purge ();
        addr_map := IMap.add base (id, bytes) !addr_map
    | Ir.Reg_write { reg; value } -> if reg < p.n_registers then regs.(reg) <- value
    | Ir.Clear_registers -> Array.fill regs 0 p.n_registers (Ir.vint 0)
    | Ir.Frame_push { slots; padding; cleared } ->
        incr gen;
        let lo = lv.Liveness.sp_before.(i) - slots - padding in
        frames := { fr_lo = lo; fr_slots = slots; fr_padding = padding; fr_gen = !gen } :: !frames;
        if cleared then
          for w = max 0 lo to lv.Liveness.sp_before.(i) - 1 do
            stack.(w) <- Ir.vint 0;
            prov.(w) <- P_zero
          done
    | Ir.Frame_pop { cleared; _ } -> (
        match !frames with
        | f :: rest ->
            frames := rest;
            if cleared then
              for w = f.fr_lo to f.fr_lo + f.fr_slots + f.fr_padding - 1 do
                stack.(w) <- Ir.vint 0;
                prov.(w) <- P_zero
              done
        | [] -> ())
    | Ir.Local_write { word; value } ->
        if word >= 0 && word < p.stack_words then begin
          stack.(word) <- value;
          prov.(word) <-
            (match covering word with Some f -> P_local f.fr_gen | None -> P_local !gen)
        end
    | Ir.Spill_write { word; value } ->
        if word >= 0 && word < p.stack_words then begin
          stack.(word) <- value;
          prov.(word) <- P_spill
        end
    | Ir.Stack_clear { lo_word; n_words } ->
        for w = max 0 lo_word to min (p.stack_words - 1) (lo_word + n_words - 1) do
          stack.(w) <- Ir.vint 0;
          prov.(w) <- P_zero
        done
    | Ir.Heap_write { obj = id; field; value } -> (
        match obj id with
        | Some o ->
            if field >= 0 && field < Array.length o.o_fields then o.o_fields.(field) <- value;
            if value.Ir.obj <> None then o.o_ever_held_ptr <- true
        | None -> ())
    | Ir.Root_write { word; value } -> if word < p.globals_words then globals.(word) <- value
    | Ir.Reg_read _ | Ir.Local_read _ | Ir.Heap_read _ | Ir.Root_read _ | Ir.Park _ | Ir.Unpark
    | Ir.Spawn _ | Ir.Join _ | Ir.Finalizer_attach _ | Ir.Write_barrier _ ->
        ()
    | Ir.Gc_point { measured } ->
        let k = !ordinal in
        incr ordinal;
        let live = Liveness.at_gc lv k in
        let sp = lv.Liveness.sp_before.(i) in
        (* 1. the conservative marker's view *)
        let seeds = ref [] in
        Array.iter (fun (v : Ir.value) -> seeds := v.raw :: !seeds) regs;
        for w = sp to p.stack_words - 1 do
          seeds := stack.(w).Ir.raw :: !seeds
        done;
        Array.iter (fun (v : Ir.value) -> seeds := v.raw :: !seeds) globals;
        let misses = ref ISet.empty in
        let apparent = numeric_closure ~misses !seeds in
        (* 2. the ideal precise collector's view *)
        let precise_seeds = ref [] in
        ISet.iter
          (fun r ->
            if r < p.n_registers then
              match regs.(r).Ir.obj with Some id -> precise_seeds := id :: !precise_seeds | None -> ())
          live.Liveness.live_regs;
        ISet.iter
          (fun w ->
            if w >= 0 && w < p.stack_words then
              match stack.(w).Ir.obj with
              | Some id -> precise_seeds := id :: !precise_seeds
              | None -> ())
          live.Liveness.live_stack;
        ISet.iter
          (fun w ->
            if w < p.globals_words then
              match globals.(w).Ir.obj with
              | Some id -> precise_seeds := id :: !precise_seeds
              | None -> ())
          live.Liveness.live_globals;
        ISet.iter (fun id -> precise_seeds := id :: !precise_seeds) live.Liveness.used_objects;
        let precise = semantic_closure !precise_seeds in
        (* 3. spurious-root classification *)
        let spurious = ref [] in
        let note cls where raw =
          match resolve raw with
          | Some target when cls <> Intended ->
              spurious := { sr_class = cls; sr_where = where; sr_raw = raw; sr_target = target } :: !spurious
          | _ -> ()
        in
        let intended_raws = ref [] in
        Array.iteri
          (fun r (v : Ir.value) ->
            let cls =
              if ISet.mem r live.Liveness.live_regs then Intended else Dead_register
            in
            if cls = Intended then intended_raws := v.raw :: !intended_raws
            else note cls (Printf.sprintf "r%d" r) v.raw)
          regs;
        for w = sp to p.stack_words - 1 do
          let cls = classify_stack_word live w in
          let raw = stack.(w).Ir.raw in
          if cls <> Intended then note cls (Printf.sprintf "stack[%d] (%s)" w (class_name cls)) raw;
          (* dead locals sit in live frames: the paper's stack clearing
             cannot reclaim them, so they count toward the hygiene
             baseline — the excess is what clearing could actually fix *)
          if cls = Intended || cls = Dead_local then intended_raws := raw :: !intended_raws
        done;
        Array.iteri
          (fun w (v : Ir.value) ->
            (* globals always count toward the hygiene baseline: stack
               clearing cannot help them *)
            intended_raws := v.raw :: !intended_raws;
            if not (ISet.mem w live.Liveness.live_globals) then
              note Stale_global (Printf.sprintf "global[%d]" w) v.raw)
          globals;
        let baseline = numeric_closure !intended_raws in
        let stack_excess = ISet.cardinal apparent - ISet.cardinal baseline in
        (* 4. semantic edges among apparent objects (the access-graph raw
           material), then dead objects feeding live data (uncleared
           links, §4) by reverse reachability over those edges *)
        let dead = ISet.diff apparent precise in
        let edges = ref [] in
        ISet.iter
          (fun id ->
            match obj id with
            | Some o when not o.o_pointer_free ->
                Array.iteri
                  (fun field (v : Ir.value) ->
                    match v.Ir.obj with
                    | Some tgt -> edges := (id, field, tgt) :: !edges
                    | _ -> ())
                  o.o_fields
            | _ -> ())
          apparent;
        let edges = List.rev !edges in
        let feeding = ref ISet.empty in
        let example = ref None in
        if not (ISet.is_empty dead) then begin
          let rev : (int, int list) Hashtbl.t = Hashtbl.create 64 in
          List.iter
            (fun (src, _, tgt) ->
              Hashtbl.replace rev tgt (src :: Option.value (Hashtbl.find_opt rev tgt) ~default:[]))
            edges;
          let queue = Queue.create () in
          ISet.iter (fun id -> Queue.add id queue) precise;
          let seen = ref precise in
          while not (Queue.is_empty queue) do
            let id = Queue.take queue in
            List.iter
              (fun src ->
                if ISet.mem src dead && not (ISet.mem src !seen) then begin
                  seen := ISet.add src !seen;
                  feeding := ISet.add src !feeding;
                  if !example = None then example := Some src;
                  Queue.add src queue
                end)
              (Option.value (Hashtbl.find_opt rev id) ~default:[])
          done
        end;
        let structures = structure_stats apparent in
        snapshots :=
          {
            ordinal = k;
            at_instr = i;
            sp_word = sp;
            measured;
            apparent;
            precise;
            apparent_bytes = bytes_of apparent;
            precise_bytes = bytes_of precise;
            spurious = List.rev !spurious;
            stack_excess;
            dead_feeding_live = ISet.cardinal !feeding;
            dead_feeding_example = !example;
            structures;
            edges;
            unresolved = !misses;
          }
          :: !snapshots;
        (* 5. the model sweep: whatever the marker missed is reclaimed *)
        addr_map :=
          IMap.filter
            (fun _ (id, _) ->
              if ISet.mem id apparent then true
              else begin
                (match obj id with
                | Some o ->
                    o.o_freed <- true;
                    o.o_freed_at <- Some k
                | None -> ());
                false
              end)
            !addr_map
  done;
  { snapshots = List.rev !snapshots; objects; n_objects = !n_objects }
