(* Dynamic fix verification: replay a recorded program through a
   fresh, real collector and measure what it actually retains.

   The replay rebuilds the recorded world from scratch — new memory,
   new heap, new object addresses — and re-enacts the trace: every
   allocation goes through [Gc.allocate], every stack/global/heap write
   lands in real scanned memory, every [Gc_point] runs a real
   collection.  Written values are translated through the id map the
   recorder left in the trace: a value tagged with object [i] is
   rebased onto [i]'s replay address (interior offsets preserved), an
   untagged raw travels verbatim — so false references stay false and
   semantic edges stay semantic, just at new addresses.

   Because addresses differ between replays, reads are compared as
   normalized tokens: a loaded word is reverse-mapped through
   [Gc.find_object] to (object id, offset) when it lands in a live
   trace object, and kept raw otherwise.  Two replays are
   observationally equal when their token streams match.

   This is the measured half of fix verification: {!Fixes.verify_static}
   proves an edit cannot change the program; this module shows the real
   collector retains less afterwards. *)

module Segment = Cgc_vm.Segment
module Mem = Cgc_vm.Mem
module Addr = Cgc_vm.Addr
module Gc = Cgc.Gc
module Config = Cgc.Config

type token =
  | T_obj of int * int  (** live trace object id, interior offset *)
  | T_raw of int

type run = {
  rp_gc_points : int;
  rp_retained : int list;  (** trace-object bytes live after each collection *)
  rp_total_retained : int;
  rp_reads : token list;
  rp_allocated : int;  (** objects successfully allocated *)
  rp_skipped : int;  (** heap accesses to objects the collector had freed *)
}

type comparison = {
  cmp_before : run;
  cmp_after : run;
  cmp_retention_drop : int;  (** summed over GC points; positive = fix helps *)
  cmp_reads_equal : bool;
}

let globals_base = 0x10000
let stack_base = 0xEFF00000
let heap_base = 0x400000
let heap_max_bytes = 48 * 1024 * 1024

let round_page n = (n + 0xFFF) land lnot 0xFFF

let run (p : Ir.program) =
  let mem = Mem.create ~endian:Cgc_vm.Endian.Little () in
  let _ =
    Mem.map mem ~name:"globals" ~kind:Segment.Static_data ~base:(Addr.of_int globals_base)
      ~size:(round_page (max 1 p.Ir.globals_words * Ir.word_bytes))
  in
  let stack_size = round_page (max 1 p.Ir.stack_words * Ir.word_bytes) in
  let _ =
    Mem.map mem ~name:"stack" ~kind:Segment.Stack ~base:(Addr.of_int stack_base) ~size:stack_size
  in
  let config = { Config.default with Config.interior_pointers = p.Ir.interior_pointers } in
  let gc = Gc.create ~config mem ~base:(Addr.of_int heap_base) ~max_bytes:heap_max_bytes () in
  Gc.set_auto_collect gc false;
  let regs = Array.make (max 1 p.Ir.n_registers) 0 in
  (* id -> (recorded base, replay base, bytes); replay base -> id *)
  let fwd : (int, int * int * int) Hashtbl.t = Hashtbl.create 1024 in
  let rev : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  Gc.add_static_root gc ~lo:(Addr.of_int globals_base)
    ~hi:(Addr.of_int (globals_base + (p.Ir.globals_words * Ir.word_bytes)))
    ~label:"replay globals";
  Gc.add_register_roots gc ~label:"replay registers" (fun () -> regs);
  (* the scanned stack portion tracks sp exactly as the recorded
     machine moved it: frames, parks and spawned child regions *)
  let sp_word = ref p.Ir.stack_words in
  let sp_saves = ref [] in
  Gc.add_dynamic_roots gc ~label:"replay stack" (fun () ->
      [
        {
          Cgc.Roots.lo = Addr.of_int (stack_base + (!sp_word * Ir.word_bytes));
          hi = Addr.of_int (stack_base + (p.Ir.stack_words * Ir.word_bytes));
          label = "replay stack";
        };
      ]);
  let translate (v : Ir.value) =
    match v.Ir.obj with
    | Some id -> (
        match Hashtbl.find_opt fwd id with
        | Some (orig, now, _) -> now + (v.Ir.raw - orig)
        | None -> v.Ir.raw)
    | None -> v.Ir.raw
  in
  let reads = ref [] in
  let note raw =
    let t =
      match Gc.find_object gc (Addr.of_int (raw land 0xFFFFFFFF)) with
      | Some base -> (
          match Hashtbl.find_opt rev (Addr.to_int base) with
          | Some id -> T_obj (id, raw - Addr.to_int base)
          | None -> T_raw raw)
      | None -> T_raw raw
    in
    reads := t :: !reads
  in
  let retained = ref [] in
  let allocated = ref 0 in
  let skipped = ref 0 in
  let stack_addr w = Addr.of_int (stack_base + (w * Ir.word_bytes)) in
  let global_addr w = Addr.of_int (globals_base + (w * Ir.word_bytes)) in
  let with_obj id f =
    match Hashtbl.find_opt fwd id with
    | Some (_, now, _) when Gc.is_allocated gc (Addr.of_int now) -> f (Addr.of_int now)
    | _ -> incr skipped
  in
  Array.iter
    (fun instr ->
      match instr with
      | Ir.Alloc { obj; base; bytes; pointer_free } ->
          let addr = Gc.allocate ~pointer_free gc bytes in
          (* address reuse after a sweep: the old id no longer owns it *)
          (match Hashtbl.find_opt rev (Addr.to_int addr) with
          | Some old -> Hashtbl.remove fwd old
          | None -> ());
          Hashtbl.replace fwd obj (base, Addr.to_int addr, bytes);
          Hashtbl.replace rev (Addr.to_int addr) obj;
          incr allocated
      | Ir.Reg_write { reg; value } ->
          if reg < Array.length regs then regs.(reg) <- translate value
      | Ir.Reg_read { reg } -> if reg < Array.length regs then note regs.(reg)
      | Ir.Clear_registers -> Array.fill regs 0 (Array.length regs) 0
      | Ir.Local_write { word; value } | Ir.Spill_write { word; value } ->
          if word >= 0 && word < p.Ir.stack_words then
            Mem.write_word mem (stack_addr word) (translate value)
      | Ir.Local_read { word } ->
          if word >= 0 && word < p.Ir.stack_words then note (Mem.read_word mem (stack_addr word))
      | Ir.Stack_clear { lo_word; n_words } ->
          for w = max 0 lo_word to min (p.Ir.stack_words - 1) (lo_word + n_words - 1) do
            Mem.write_word mem (stack_addr w) 0
          done
      | Ir.Root_write { word; value } ->
          if word >= 0 && word < p.Ir.globals_words then
            Mem.write_word mem (global_addr word) (translate value)
      | Ir.Root_read { word } ->
          if word >= 0 && word < p.Ir.globals_words then note (Mem.read_word mem (global_addr word))
      | Ir.Heap_write { obj; field; value } ->
          with_obj obj (fun addr -> Gc.set_field gc addr field (translate value))
      | Ir.Heap_read { obj; field } -> with_obj obj (fun addr -> note (Gc.get_field gc addr field))
      | Ir.Frame_push { slots; padding; cleared } ->
          let n = slots + padding in
          let lo = !sp_word - n in
          if cleared then
            for w = max 0 lo to min (p.Ir.stack_words - 1) (!sp_word - 1) do
              Mem.write_word mem (stack_addr w) 0
            done;
          sp_word := lo
      | Ir.Frame_pop { slots; padding; _ } -> sp_word := !sp_word + slots + padding
      | Ir.Park { words } | Ir.Spawn { words; _ } ->
          sp_saves := !sp_word :: !sp_saves;
          sp_word := !sp_word - words
      | Ir.Unpark | Ir.Join _ -> (
          match !sp_saves with
          | sp :: rest ->
              sp_word := sp;
              sp_saves := rest
          | [] -> ())
      | Ir.Finalizer_attach { obj; token } ->
          with_obj obj (fun addr -> Gc.add_finalizer gc addr ~token:(string_of_int token))
      | Ir.Write_barrier _ -> ()
      | Ir.Gc_point _ ->
          Gc.collect gc;
          ignore (Gc.drain_pending_sweeps gc);
          ignore (Gc.drain_finalized gc);
          let live =
            Hashtbl.fold
              (fun _ (_, now, bytes) acc ->
                if Gc.is_allocated gc (Addr.of_int now) then acc + bytes else acc)
              fwd 0
          in
          retained := live :: !retained)
    p.Ir.code;
  let retained = List.rev !retained in
  {
    rp_gc_points = List.length retained;
    rp_retained = retained;
    rp_total_retained = List.fold_left ( + ) 0 retained;
    rp_reads = List.rev !reads;
    rp_allocated = !allocated;
    rp_skipped = !skipped;
  }

let compare_fix (p : Ir.program) edits =
  let before = run p in
  let after = run (Fixes.apply p edits) in
  {
    cmp_before = before;
    cmp_after = after;
    cmp_retention_drop = before.rp_total_retained - after.rp_total_retained;
    cmp_reads_equal = before.rp_reads = after.rp_reads;
  }

let pp_run ppf r =
  Format.fprintf ppf "replay: %d alloc(s), %d GC point(s), retained %s (total %dB)%s" r.rp_allocated
    r.rp_gc_points
    (String.concat "/" (List.map (fun b -> string_of_int b ^ "B") r.rp_retained))
    r.rp_total_retained
    (if r.rp_skipped > 0 then Printf.sprintf ", %d dead-object access(es) skipped" r.rp_skipped
     else "")

let pp_comparison ppf c =
  Format.fprintf ppf "@[<v>before: %a@,after:  %a@,drop: %dB, reads %s@]" pp_run c.cmp_before pp_run
    c.cmp_after c.cmp_retention_drop
    (if c.cmp_reads_equal then "preserved" else "CHANGED")
