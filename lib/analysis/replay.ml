(* Dynamic fix verification: replay a recorded program through a
   fresh, real collector and measure what it actually retains.

   The replay rebuilds the recorded world from scratch — new memory,
   new heap, new object addresses — and re-enacts the trace: every
   allocation goes through the collector, every stack/global/heap write
   lands in real scanned memory, every [Gc_point] runs a real
   collection.  Written values are translated through the id map the
   recorder left in the trace: a value tagged with object [i] is
   rebased onto [i]'s replay address (interior offsets preserved), an
   untagged raw travels verbatim — so false references stay false and
   semantic edges stay semantic, just at new addresses.

   Because addresses differ between replays, reads are compared as
   normalized tokens: a loaded word is reverse-mapped through
   [Gc.find_object] to (object id, offset) when it lands in a live
   trace object, and kept raw otherwise.  Two replays are
   observationally equal when their token streams match.

   Two backends share the re-enactment loop: the conservative collector
   (every [Gc_point] a full collection) and the generational wrapper
   (every [Gc_point] a minor collection; the recorded [Write_barrier]
   events are re-applied as [Generational.set_field] stores, so the
   dirty bits evolve exactly as the original mutator drove them, while
   plain [Heap_write]s go through the unbarriered [Gc.set_field] the
   recorded machine used).

   This is the measured half of fix verification: {!Fixes.verify_static}
   proves an edit cannot change the program; this module shows the real
   collector retains less afterwards — and, generationally, promotes
   less garbage past the reach of minor collections (section 3.1's
   ceiling). *)

module Segment = Cgc_vm.Segment
module Mem = Cgc_vm.Mem
module Addr = Cgc_vm.Addr
module Gc = Cgc.Gc
module Config = Cgc.Config
module Heap = Cgc.Heap
module Generational = Cgc.Generational

type token =
  | T_obj of int * int  (** live trace object id, interior offset *)
  | T_raw of int

type run = {
  rp_gc_points : int;
  rp_retained : int list;  (** trace-object bytes live after each collection *)
  rp_total_retained : int;
  rp_reads : token list;
  rp_allocated : int;  (** objects successfully allocated *)
  rp_skipped : int;  (** heap accesses to objects the collector had freed *)
}

type comparison = {
  cmp_before : run;
  cmp_after : run;
  cmp_retention_drop : int;  (** summed over GC points; positive = fix helps *)
  cmp_reads_equal : bool;
}

let globals_base = 0x10000
let stack_base = 0xEFF00000
let heap_base = 0x400000
let heap_max_bytes = 48 * 1024 * 1024

let round_page n = (n + 0xFFF) land lnot 0xFFF

(* One collector backend seen by the re-enactment loop.  [bk_barrier]
   is [None] for backends without a write barrier: a recorded
   [Write_barrier] event is then a pure no-op, exactly as before. *)
type backend = {
  bk_allocate : pointer_free:bool -> int -> Addr.t;
  bk_set_field : Addr.t -> int -> int -> unit;
  bk_get_field : Addr.t -> int -> int;
  bk_barrier : (Addr.t -> int -> unit) option;
  bk_collect : unit -> unit;
}

(* Rebuild the recorded world and re-enact the trace through [make gc].
   Returns the observational record plus the id -> (recorded base,
   replay base, bytes) table as it stands at trace end, so callers can
   ask where the trace objects ended up. *)
let enact (make : Gc.t -> backend) (p : Ir.program) =
  let mem = Mem.create ~endian:Cgc_vm.Endian.Little () in
  let _ =
    Mem.map mem ~name:"globals" ~kind:Segment.Static_data ~base:(Addr.of_int globals_base)
      ~size:(round_page (max 1 p.Ir.globals_words * Ir.word_bytes))
  in
  let stack_size = round_page (max 1 p.Ir.stack_words * Ir.word_bytes) in
  let _ =
    Mem.map mem ~name:"stack" ~kind:Segment.Stack ~base:(Addr.of_int stack_base) ~size:stack_size
  in
  let config = { Config.default with Config.interior_pointers = p.Ir.interior_pointers } in
  let gc = Gc.create ~config mem ~base:(Addr.of_int heap_base) ~max_bytes:heap_max_bytes () in
  Gc.set_auto_collect gc false;
  let b = make gc in
  let regs = Array.make (max 1 p.Ir.n_registers) 0 in
  (* id -> (recorded base, replay base, bytes); replay base -> id *)
  let fwd : (int, int * int * int) Hashtbl.t = Hashtbl.create 1024 in
  let rev : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  Gc.add_static_root gc ~lo:(Addr.of_int globals_base)
    ~hi:(Addr.of_int (globals_base + (p.Ir.globals_words * Ir.word_bytes)))
    ~label:"replay globals";
  Gc.add_register_roots gc ~label:"replay registers" (fun () -> regs);
  (* the scanned stack portion tracks sp exactly as the recorded
     machine moved it: frames, parks and spawned child regions *)
  let sp_word = ref p.Ir.stack_words in
  let sp_saves = ref [] in
  Gc.add_dynamic_roots gc ~label:"replay stack" (fun () ->
      [
        {
          Cgc.Roots.lo = Addr.of_int (stack_base + (!sp_word * Ir.word_bytes));
          hi = Addr.of_int (stack_base + (p.Ir.stack_words * Ir.word_bytes));
          label = "replay stack";
        };
      ]);
  let translate (v : Ir.value) =
    match v.Ir.obj with
    | Some id -> (
        match Hashtbl.find_opt fwd id with
        | Some (orig, now, _) -> now + (v.Ir.raw - orig)
        | None -> v.Ir.raw)
    | None -> v.Ir.raw
  in
  let reads = ref [] in
  let note raw =
    let t =
      match Gc.find_object gc (Addr.of_int (raw land 0xFFFFFFFF)) with
      | Some base -> (
          match Hashtbl.find_opt rev (Addr.to_int base) with
          | Some id -> T_obj (id, raw - Addr.to_int base)
          | None -> T_raw raw)
      | None -> T_raw raw
    in
    reads := t :: !reads
  in
  let retained = ref [] in
  let allocated = ref 0 in
  let skipped = ref 0 in
  let stack_addr w = Addr.of_int (stack_base + (w * Ir.word_bytes)) in
  let global_addr w = Addr.of_int (globals_base + (w * Ir.word_bytes)) in
  let with_obj id f =
    match Hashtbl.find_opt fwd id with
    | Some (_, now, _) when Gc.is_allocated gc (Addr.of_int now) -> f (Addr.of_int now)
    | _ -> incr skipped
  in
  Array.iter
    (fun instr ->
      match instr with
      | Ir.Alloc { obj; base; bytes; pointer_free } ->
          let addr = b.bk_allocate ~pointer_free bytes in
          (* address reuse after a sweep: the old id no longer owns it *)
          (match Hashtbl.find_opt rev (Addr.to_int addr) with
          | Some old -> Hashtbl.remove fwd old
          | None -> ());
          Hashtbl.replace fwd obj (base, Addr.to_int addr, bytes);
          Hashtbl.replace rev (Addr.to_int addr) obj;
          incr allocated
      | Ir.Reg_write { reg; value } ->
          if reg < Array.length regs then regs.(reg) <- translate value
      | Ir.Reg_read { reg } -> if reg < Array.length regs then note regs.(reg)
      | Ir.Clear_registers -> Array.fill regs 0 (Array.length regs) 0
      | Ir.Local_write { word; value } | Ir.Spill_write { word; value } ->
          if word >= 0 && word < p.Ir.stack_words then
            Mem.write_word mem (stack_addr word) (translate value)
      | Ir.Local_read { word } ->
          if word >= 0 && word < p.Ir.stack_words then note (Mem.read_word mem (stack_addr word))
      | Ir.Stack_clear { lo_word; n_words } ->
          for w = max 0 lo_word to min (p.Ir.stack_words - 1) (lo_word + n_words - 1) do
            Mem.write_word mem (stack_addr w) 0
          done
      | Ir.Root_write { word; value } ->
          if word >= 0 && word < p.Ir.globals_words then
            Mem.write_word mem (global_addr word) (translate value)
      | Ir.Root_read { word } ->
          if word >= 0 && word < p.Ir.globals_words then note (Mem.read_word mem (global_addr word))
      | Ir.Heap_write { obj; field; value } ->
          with_obj obj (fun addr -> b.bk_set_field addr field (translate value))
      | Ir.Heap_read { obj; field } -> with_obj obj (fun addr -> note (b.bk_get_field addr field))
      | Ir.Frame_push { slots; padding; cleared } ->
          let n = slots + padding in
          let lo = !sp_word - n in
          if cleared then
            for w = max 0 lo to min (p.Ir.stack_words - 1) (!sp_word - 1) do
              Mem.write_word mem (stack_addr w) 0
            done;
          sp_word := lo
      | Ir.Frame_pop { slots; padding; _ } -> sp_word := !sp_word + slots + padding
      | Ir.Park { words } | Ir.Spawn { words; _ } ->
          sp_saves := !sp_word :: !sp_saves;
          sp_word := !sp_word - words
      | Ir.Unpark | Ir.Join _ -> (
          match !sp_saves with
          | sp :: rest ->
              sp_word := sp;
              sp_saves := rest
          | [] -> ())
      | Ir.Finalizer_attach { obj; token } ->
          with_obj obj (fun addr -> Gc.add_finalizer gc addr ~token:(string_of_int token))
      | Ir.Write_barrier { obj; field } -> (
          match b.bk_barrier with
          | None -> ()
          | Some barrier -> with_obj obj (fun addr -> barrier addr field))
      | Ir.Gc_point _ ->
          b.bk_collect ();
          let live =
            Hashtbl.fold
              (fun _ (_, now, bytes) acc ->
                if Gc.is_allocated gc (Addr.of_int now) then acc + bytes else acc)
              fwd 0
          in
          retained := live :: !retained)
    p.Ir.code;
  let retained = List.rev !retained in
  ( {
      rp_gc_points = List.length retained;
      rp_retained = retained;
      rp_total_retained = List.fold_left ( + ) 0 retained;
      rp_reads = List.rev !reads;
      rp_allocated = !allocated;
      rp_skipped = !skipped;
    },
    (gc, fwd) )

let run (p : Ir.program) =
  let r, _ =
    enact
      (fun gc ->
        {
          bk_allocate = (fun ~pointer_free bytes -> Gc.allocate ~pointer_free gc bytes);
          bk_set_field = Gc.set_field gc;
          bk_get_field = Gc.get_field gc;
          bk_barrier = None;
          bk_collect =
            (fun () ->
              Gc.collect gc;
              ignore (Gc.drain_pending_sweeps gc);
              ignore (Gc.drain_finalized gc));
        })
      p
  in
  r

let compare_fix (p : Ir.program) edits =
  let before = run p in
  let after = run (Fixes.apply p edits) in
  {
    cmp_before = before;
    cmp_after = after;
    cmp_retention_drop = before.rp_total_retained - after.rp_total_retained;
    cmp_reads_equal = before.rp_reads = after.rp_reads;
  }

(* --- the generational backend --- *)

type gen_audit = {
  ga_dirty : int list;
  ga_carried : int list;
  ga_barriered : int list;
}

type gen_run = {
  gr_run : run;
  gr_stats : Generational.stats;
  gr_old : (int * int) list;
  gr_old_bytes : int;
  gr_major_reclaimed : int;
  gr_audits : gen_audit list;
}

let run_generational ?(promote_after = 2) (p : Ir.program) =
  let gen_ref = ref None in
  let audits = ref [] in
  let barriered = ref [] in
  let r, (gc, fwd) =
    enact
      (fun gc ->
        let gen = Generational.create ~promote_after gc in
        gen_ref := Some gen;
        {
          bk_allocate = (fun ~pointer_free bytes -> Generational.allocate ~pointer_free gen bytes);
          (* plain stores, exactly like the recorded machine's
             [write_field]: the barrier is replayed separately, from the
             recorded [Write_barrier] events *)
          bk_set_field = Gc.set_field gc;
          bk_get_field = Gc.get_field gc;
          bk_barrier =
            Some
              (fun addr field ->
                if Generational.is_old gen addr then
                  barriered := Heap.page_index (Gc.heap gc) addr :: !barriered;
                (* re-apply the store through the barrier; the value is
                   already in place, so this only drives the dirty bit *)
                Generational.set_field gen addr field (Gc.get_field gc addr field));
          bk_collect =
            (fun () ->
              audits :=
                {
                  ga_dirty = Generational.dirty_pages gen;
                  ga_carried = Generational.carried_pages gen;
                  ga_barriered = List.sort_uniq compare !barriered;
                }
                :: !audits;
              barriered := [];
              Generational.minor gen;
              ignore (Gc.drain_finalized gc));
        })
      p
  in
  let gen = Option.get !gen_ref in
  let stats = Generational.stats gen in
  (* trace objects sitting on promoted pages at trace end: the §3.1
     population — whatever among them is garbage, no minor collection
     will ever reclaim it *)
  let old_triples =
    Hashtbl.fold
      (fun id (_, now, bytes) acc ->
        let a = Addr.of_int now in
        if Gc.is_allocated gc a && Generational.is_old gen a then (id, now, bytes) :: acc else acc)
      fwd []
  in
  let old_bytes = List.fold_left (fun acc (_, _, b) -> acc + b) 0 old_triples in
  (* a closing major: how much of the promoted population a full
     collection can still take back (the rest is pinned by live roots) *)
  Generational.major gen;
  let reclaimed =
    List.fold_left
      (fun acc (_, now, bytes) -> if Gc.is_allocated gc (Addr.of_int now) then acc else acc + bytes)
      0 old_triples
  in
  {
    gr_run = r;
    gr_stats = stats;
    gr_old = List.map (fun (id, _, bytes) -> (id, bytes)) old_triples;
    gr_old_bytes = old_bytes;
    gr_major_reclaimed = reclaimed;
    gr_audits = List.rev !audits;
  }

(* Promoted garbage: the trace objects that ended on old pages even
   though the mutator was precisely done with them — measured placement
   crossed with the analyzer's ground-truth liveness at the last GC
   point.  (A closing major alone undercounts: garbage still pinned by
   a stray root survives even a full collection.) *)
let promoted_garbage (p : Ir.program) (g : gen_run) =
  let liveness = Liveness.analyze p in
  let ap = Apparent.analyze p liveness in
  let precise_end =
    match List.rev ap.Apparent.snapshots with
    | last :: _ -> last.Apparent.precise
    | [] -> Liveness.ISet.empty
  in
  List.fold_left
    (fun acc (id, bytes) -> if Liveness.ISet.mem id precise_end then acc else acc + bytes)
    0 g.gr_old

(* Between two minor collections (absent an emergency major inside an
   OOM retry), the dirty set entering a minor has exactly two sources:
   bits carried by the previous rescan and barrier stores into old
   pages since.  The replay harness records both independently, so the
   lifecycle is checkable bit-for-bit. *)
let audit_exact (a : gen_audit) =
  let module IS = Set.Make (Int) in
  IS.equal (IS.of_list a.ga_dirty)
    (IS.union (IS.of_list a.ga_carried) (IS.of_list a.ga_barriered))

type gen_comparison = {
  gcmp_before : gen_run;
  gcmp_after : gen_run;
  gcmp_retention_drop : int;
  gcmp_garbage_before : int;
  gcmp_garbage_after : int;
  gcmp_garbage_drop : int;
  gcmp_reads_equal : bool;
}

let compare_fix_generational ?promote_after (p : Ir.program) edits =
  let p' = Fixes.apply p edits in
  let before = run_generational ?promote_after p in
  let after = run_generational ?promote_after p' in
  let gb = promoted_garbage p before in
  let ga = promoted_garbage p' after in
  {
    gcmp_before = before;
    gcmp_after = after;
    gcmp_retention_drop = before.gr_run.rp_total_retained - after.gr_run.rp_total_retained;
    gcmp_garbage_before = gb;
    gcmp_garbage_after = ga;
    gcmp_garbage_drop = gb - ga;
    gcmp_reads_equal = before.gr_run.rp_reads = after.gr_run.rp_reads;
  }

let pp_run ppf r =
  Format.fprintf ppf "replay: %d alloc(s), %d GC point(s), retained %s (total %dB)%s" r.rp_allocated
    r.rp_gc_points
    (String.concat "/" (List.map (fun b -> string_of_int b ^ "B") r.rp_retained))
    r.rp_total_retained
    (if r.rp_skipped > 0 then Printf.sprintf ", %d dead-object access(es) skipped" r.rp_skipped
     else "")

let pp_comparison ppf c =
  Format.fprintf ppf "@[<v>before: %a@,after:  %a@,drop: %dB, reads %s@]" pp_run c.cmp_before pp_run
    c.cmp_after c.cmp_retention_drop
    (if c.cmp_reads_equal then "preserved" else "CHANGED")

let pp_gen_run ppf g =
  Format.fprintf ppf "%a@,  %a; %dB of trace objects old at end (closing major takes back %dB)"
    pp_run g.gr_run Generational.pp_stats g.gr_stats g.gr_old_bytes g.gr_major_reclaimed

let pp_gen_comparison ppf c =
  Format.fprintf ppf
    "@[<v>before: %a@,after:  %a@,retention drop: %dB; promoted garbage %dB -> %dB (drop %dB), \
     reads %s@]"
    pp_gen_run c.gcmp_before pp_gen_run c.gcmp_after c.gcmp_retention_drop c.gcmp_garbage_before
    c.gcmp_garbage_after c.gcmp_garbage_drop
    (if c.gcmp_reads_equal then "preserved" else "CHANGED")
