(** Forward model of the conservative marker over an IR program.

    Replays the trace, mirroring registers, stack, globals and heap
    object fields, and at every GC point computes both the conservative
    (apparent) live set — the numeric closure of every scanned word
    against the current object address map — and the precise live set —
    the semantic closure of dataflow-live locations.  The difference is
    the predicted spurious retention, with every spurious root
    classified by the paper's taxonomy (stale slots, frame padding,
    allocator spill residue, dead registers, uncleared globals,
    parked stack regions). *)

module ISet = Liveness.ISet

type root_class =
  | Intended
  | Dead_local
  | Stale_slot
  | Padding
  | Spill_residue
  | Dead_register
  | Stale_global
  | Parked

val class_name : root_class -> string

type spurious_root = {
  sr_class : root_class;
  sr_where : string;  (** human-readable location, e.g. ["stack[512]"] *)
  sr_raw : int;
  sr_target : int;  (** object id the raw value resolves to *)
}

type structure_stats = {
  g_bytes : int;
  g_pointer_free : bool;
  g_count : int;
  g_mean_intra_degree : float;
  g_mean_blast : float;
}

type gc_snapshot = {
  ordinal : int;
  at_instr : int;
  sp_word : int;
  measured : Ir.measurement option;
  apparent : ISet.t;
  precise : ISet.t;
  apparent_bytes : int;
  precise_bytes : int;
  spurious : spurious_root list;
  stack_excess : int;
  dead_feeding_live : int;
  dead_feeding_example : int option;
  structures : structure_stats list;
  edges : (int * int * int) list;
      (** semantic pointer edges [(src, field, dst)] out of apparent
          objects at this point — the raw material of access graphs *)
  unresolved : ISet.t;
      (** nonzero raw words the marker scanned or traversed into that
          resolved to no object — the false references the real
          collector blacklists *)
}

type obj_state = {
  o_id : int;
  o_base : int;
  o_bytes : int;
  o_pointer_free : bool;
  o_fields : Ir.value array;
  mutable o_freed : bool;
  mutable o_freed_at : int option;
  mutable o_ever_held_ptr : bool;
}

type result = {
  snapshots : gc_snapshot list;
  objects : (int, obj_state) Hashtbl.t;
  n_objects : int;
}

val analyze : Ir.program -> Liveness.t -> result
