(** First-class IR for recorded mutator programs.

    A program is a linear trace of the mutator's observable actions.
    Addresses are abstracted: stack and global words are
    segment-relative word indices (stack word 0 = lowest address of the
    stack segment), heap objects are dense ids assigned at allocation
    (so address reuse after a sweep cannot conflate two objects), and
    each written value carries both its raw 32-bit image (what the
    conservative marker sees) and the id of the object it pointed to at
    write time, if any (the semantic edge a precise collector would
    follow). *)

type value = {
  raw : int;
  obj : int option;
}

val vint : int -> value
(** A plain integer value (no semantic edge). *)

type measurement = {
  m_collections : int;
  m_live_objects : int;
  m_live_bytes : int;
}

type instr =
  | Alloc of { obj : int; base : int; bytes : int; pointer_free : bool }
  | Reg_write of { reg : int; value : value }
  | Reg_read of { reg : int }
  | Frame_push of { slots : int; padding : int; cleared : bool }
  | Frame_pop of { slots : int; padding : int; cleared : bool }
  | Local_write of { word : int; value : value }
  | Local_read of { word : int }
  | Spill_write of { word : int; value : value }
  | Stack_clear of { lo_word : int; n_words : int }
  | Heap_write of { obj : int; field : int; value : value }
  | Heap_read of { obj : int; field : int }
  | Root_write of { word : int; value : value }
  | Root_read of { word : int }
  | Gc_point of { measured : measurement option }
      (** [measured]: post-sweep collector statistics when the program
          was recorded from a live run. *)
  | Park of { words : int }
  | Unpark
  | Clear_registers
  | Finalizer_attach of { obj : int; token : int }
      (** a finalizer was registered for [obj].  Not a use: the
          collector reclaims finalizable garbage (running the finalizer
          first), so treating attachment as a retention edge would break
          the precise-is-a-lower-bound invariant. *)
  | Spawn of { thread : int; words : int }
      (** a child thread begins; [words] stack words below the current
          sp belong to it and stay scannable until the matching [Join] *)
  | Join of { thread : int }
  | Write_barrier of { obj : int; field : int }
      (** a generational card-marking event for a pointer store into
          [obj]; liveness-inert, surfaced to shape analysis and reports *)

type program = {
  n_registers : int;
  stack_words : int;
  globals_words : int;
  interior_pointers : bool;
  code : instr array;
}

val word_bytes : int

val count_gc_points : program -> int
val count_allocs : program -> int

val pp_value : Format.formatter -> value -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp : Format.formatter -> program -> unit
