(** Backward liveness dataflow over registers, stack words, global
    words, and (at the trace level) heap objects.

    The result answers, for every GC point of the program: which
    locations hold values the mutator will still read, and which
    objects it will still access.  Everything else a conservative
    marker retains from those locations is spurious. *)

module ISet : Set.S with type elt = int

type at_gc = {
  live_regs : ISet.t;
  live_stack : ISet.t;
  live_globals : ISet.t;
  used_objects : ISet.t;
}

type t = {
  per_gc : at_gc array;
  sp_before : int array;
}

val analyze : Ir.program -> t

val at_gc : t -> int -> at_gc
(** By GC-point ordinal in program order. *)

val n_gc_points : t -> int
