(* Bundled workload scenarios with recorders attached — the
   cross-validation suite.  Each scenario runs one of the repo's
   mutator programs with a trace recorder hooked in through its
   [?prepare] hook, analyzes the recorded IR, and keeps the live
   collector handle around so findings can be explained with dynamic
   provenance chains. *)

module W = Cgc_workloads
module Machine = Cgc_mutator.Machine

type outcome = {
  o_name : string;
  o_analysis : Analysis.t;
  o_recorder : Recorder.t;
  o_gc : Cgc.Gc.t;
  o_note : string;  (** the workload's own result, pretty-printed *)
}

let finish name rec_ gc note =
  let program = Recorder.finish rec_ in
  { o_name = name; o_analysis = Analysis.run program; o_recorder = rec_; o_gc = gc; o_note = note }

(* A runner that dies after [prepare] attached the recorder would
   otherwise leave the tracer armed on a machine the next scenario
   never sees — and a recorder holding a partial trace.  Abort the
   recorder (detach tracer, drop buffered state) on every non-returning
   exit, so back-to-back scenarios start clean even when one fails. *)
let guarded st runner =
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !finished then Option.iter (fun (rec_, _) -> Recorder.abort rec_) !st)
    (fun () ->
      let r = runner () in
      finished := true;
      r)

let with_harness name runner =
  let st = ref None in
  let prepare (h : W.Harness.t) =
    st := Some (Recorder.attach h.W.Harness.machine ~globals:h.W.Harness.data, h.W.Harness.gc)
  in
  let note = guarded st (fun () -> runner ~prepare) in
  match !st with
  | Some (rec_, gc) -> finish name rec_ gc note
  | None -> invalid_arg "scenario runner never called prepare"

let with_platform name platform =
  let st = ref None in
  let prepare (env : W.Platform.env) =
    st := Some (Recorder.attach env.W.Platform.machine ~globals:env.W.Platform.data, env.W.Platform.gc)
  in
  let result = guarded st (fun () -> W.Program_t.run ~prepare platform) in
  match !st with
  | Some (rec_, gc) -> finish name rec_ gc (Fmt.str "%a" W.Program_t.pp_result result)
  | None -> invalid_arg "program_t never called prepare"

let list_reverse name mode =
  with_harness name (fun ~prepare ->
      let r = W.List_reverse.run ~prepare mode ~elements:60 ~iterations:8 in
      Fmt.str "%a" W.List_reverse.pp r)

let grid name repr =
  with_harness name (fun ~prepare ->
      let r = W.Grid.run_one ~prepare repr ~rows:12 ~cols:12 ~target:30 in
      Fmt.str "grid %dx%d: retained %d/%d cells (%.0f%%)" r.W.Grid.rows r.W.Grid.cols
        r.W.Grid.retained_cells r.W.Grid.total_cells (100. *. r.W.Grid.retained_fraction))

let queue name ~clear_links =
  with_harness name (fun ~prepare ->
      let r = W.Queue_lazy.run ~prepare ~clear_links 160 in
      Fmt.str "%a" W.Queue_lazy.pp r)

let program_t name machine_config =
  with_platform name (W.Platform.clean ~machine_config ())

let table =
  [
    ("list-reverse-careless", fun () -> list_reverse "list-reverse-careless" W.List_reverse.Careless);
    ("list-reverse-cleared", fun () -> list_reverse "list-reverse-cleared" W.List_reverse.Cleared);
    ("grid-embedded", fun () -> grid "grid-embedded" W.Grid.Embedded);
    ("grid-separate", fun () -> grid "grid-separate" W.Grid.Separate);
    ("queue-no-clear", fun () -> queue "queue-no-clear" ~clear_links:false);
    ("queue-clear", fun () -> queue "queue-clear" ~clear_links:true);
    ("program-t-careless", fun () -> program_t "program-t-careless" Machine.careless_config);
    ("program-t-hygienic", fun () -> program_t "program-t-hygienic" Machine.hygienic_config);
  ]

let names = List.map fst table
let run name = Option.map (fun f -> f ()) (List.assoc_opt name table)
let run_all () = List.map (fun (_, f) -> f ()) table

(* ------------------------------------------------------------------ *)
(* The starvation matrix: tiny-heap scenarios steered into each of the
   predictor's classifications, with the static prediction checked for
   exact agreement against the real collector's OOM diagnosis and
   ladder counters. *)

module Mem = Cgc_vm.Mem
module Addr = Cgc_vm.Addr

type matrix_entry = {
  m_name : string;
  m_predicted : Starvation.classification;
  m_measured : Starvation.classification;
  m_prediction : Starvation.prediction;
  m_oom : Cgc.Gc.oom_diagnosis option;
  m_ladder_rungs : int;
  m_note : string;
}

let matrix_heap_base = 0x400000
let matrix_page = 4096
let matrix_obj = 256 (* 16 objects per page *)

(* A raw integer that lands inside the given heap page but names no
   object: global-root pollution, the seed of a blacklist entry. *)
let page_poison page = matrix_heap_base + (page * matrix_page) + 64

let pollute h ~slot pages =
  List.iteri (fun i p -> W.Harness.set_root h (slot + i) (page_poison p)) pages

(* A chain of [n] objects linked through field 0, head rooted at
   [slot].  Survives collections mid-build through register 0 (the
   conservative scan follows the freshest allocation's link chain). *)
let build_chain ?(bytes = matrix_obj) ?pointer_free h ~slot ~n =
  let machine = h.W.Harness.machine in
  let prev = ref 0 in
  for _ = 1 to n do
    let o = Machine.allocate ?pointer_free machine bytes in
    Machine.write_field machine o 0 !prev;
    prev := Addr.to_int o
  done;
  W.Harness.set_root h slot !prev

let churn ?(bytes = matrix_obj) ?pointer_free h ~n =
  for _ = 1 to n do
    ignore (Machine.allocate ?pointer_free h.W.Harness.machine bytes)
  done

(* Run one matrix scenario: record the workload, classify its ending
   both ways, and demand nothing — agreement is asserted by the
   selfcheck, not here. *)
let matrix_scenario ~name ~pages ?(config = fun c -> c) ?decay body =
  let config =
    config
      { Cgc.Config.default with Cgc.Config.initial_pages = pages; Cgc.Config.blacklisting = true }
  in
  let h = W.Harness.create ~config ~heap_kb:(pages * matrix_page / 1024) () in
  let geometry = Starvation.capture h.W.Harness.gc in
  let recorder = Recorder.attach h.W.Harness.machine ~globals:h.W.Harness.data in
  let oom = ref None in
  let note =
    guarded
      (ref (Some (recorder, h.W.Harness.gc)))
      (fun () ->
        try body h
        with Cgc.Gc.Out_of_memory d ->
          oom := Some d;
          Fmt.str "OOM: %s" (Cgc.Gc.oom_message d))
  in
  let program = Recorder.finish recorder in
  let liveness = Liveness.analyze program in
  let retention = Apparent.analyze program liveness in
  let prediction = Starvation.predict ?decay geometry program retention in
  let stats = Cgc.Gc.stats h.W.Harness.gc in
  {
    m_name = name;
    m_predicted = prediction.Starvation.pr_class;
    m_measured = Starvation.classify_measured ~oom:!oom stats;
    m_prediction = prediction;
    m_oom = !oom;
    m_ladder_rungs = Starvation.ladder_rungs stats;
    m_note = note;
  }

(* Catch the fault-plan exceptions a decayed world throws at the
   mutator and keep going; only [Out_of_memory] ends the scenario. *)
let tolerant f = try f () with Mem.Write_fault _ | Mem.Read_fault _ -> ()

let matrix_table =
  [
    (* -- safe ------------------------------------------------------ *)
    ( "sv-safe-steady",
      fun () ->
        matrix_scenario ~name:"sv-safe-steady" ~pages:16 (fun h ->
            build_chain h ~slot:0 ~n:8;
            churn h ~n:200;
            "steady churn, 8 live") );
    ( "sv-safe-growth",
      fun () ->
        matrix_scenario ~name:"sv-safe-growth" ~pages:32
          ~config:(fun c -> { c with Cgc.Config.initial_pages = 8 })
          (fun h ->
            build_chain h ~slot:0 ~n:192;
            churn h ~n:100;
            "rung-free growth to 12 live pages") );
    ( "sv-safe-atomic",
      fun () ->
        matrix_scenario ~name:"sv-safe-atomic" ~pages:16 (fun h ->
            pollute h ~slot:0 (List.init 14 (fun i -> i + 2));
            Cgc.Gc.collect h.W.Harness.gc;
            build_chain h ~slot:40 ~n:16 ~pointer_free:true;
            churn h ~n:150 ~pointer_free:true;
            "atomic churn over a 14/16-black heap") );
    (* -- ladder-rescuable ------------------------------------------ *)
    ( "sv-ladder-tight",
      fun () ->
        matrix_scenario ~name:"sv-ladder-tight" ~pages:16
          ~config:(fun c -> { c with Cgc.Config.blacklisting = false })
          (fun h ->
            build_chain h ~slot:0 ~n:224;
            churn h ~n:160;
            "churn against 14/16 pages live") );
    ( "sv-ladder-lazy",
      fun () ->
        matrix_scenario ~name:"sv-ladder-lazy" ~pages:16
          ~config:(fun c -> { c with Cgc.Config.blacklisting = false; Cgc.Config.lazy_sweep = true })
          (fun h ->
            build_chain h ~slot:0 ~n:224;
            churn h ~n:160;
            "lazy sweep: ladder drains deferred pages") );
    ( "sv-ladder-hashed",
      fun () ->
        matrix_scenario ~name:"sv-ladder-hashed" ~pages:16
          ~config:(fun c -> { c with Cgc.Config.blacklist_buckets = Some 8 })
          (fun h ->
            pollute h ~slot:0 [ 12 ];
            Cgc.Gc.collect h.W.Harness.gc;
            build_chain h ~slot:4 ~n:192;
            churn h ~n:80;
            "hashed blacklist smears 1 false ref over 2 pages") );
    ( "sv-ladder-relax",
      fun () ->
        matrix_scenario ~name:"sv-ladder-relax" ~pages:16
          ~config:(fun c -> { c with Cgc.Config.relax_blacklist = true })
          (fun h ->
            pollute h ~slot:0 (List.init 10 (fun i -> i + 4));
            Cgc.Gc.collect h.W.Harness.gc;
            build_chain h ~slot:20 ~n:96;
            churn h ~n:48;
            "blacklist-starved shape rescued by relaxation") );
    (* -- blacklist-starved ----------------------------------------- *)
    ( "sv-starved-exact",
      fun () ->
        matrix_scenario ~name:"sv-starved-exact" ~pages:16 (fun h ->
            pollute h ~slot:0 (List.init 12 (fun i -> i + 4));
            Cgc.Gc.collect h.W.Harness.gc;
            build_chain h ~slot:20 ~n:64;
            churn h ~n:64;
            "unreachable: churn should have died") );
    ( "sv-starved-hashed",
      fun () ->
        matrix_scenario ~name:"sv-starved-hashed" ~pages:16
          ~config:(fun c -> { c with Cgc.Config.blacklist_buckets = Some 8 })
          (fun h ->
            build_chain h ~slot:20 ~n:16;
            pollute h ~slot:0 (List.init 14 (fun i -> i + 2));
            Cgc.Gc.collect h.W.Harness.gc;
            churn h ~n:8;
            "unreachable: every bucket is dirty") );
    ( "sv-starved-large",
      fun () ->
        matrix_scenario ~name:"sv-starved-large" ~pages:16 (fun h ->
            churn h ~n:1 ~bytes:(8 * matrix_page);
            pollute h ~slot:0 (List.init 8 (fun i -> (2 * i) + 1));
            Cgc.Gc.collect h.W.Harness.gc;
            churn h ~n:1 ~bytes:(8 * matrix_page);
            "unreachable: no clean 8-page run") );
    (* -- decay-vulnerable ------------------------------------------ *)
    ( "sv-decay-writes",
      fun () ->
        matrix_scenario ~name:"sv-decay-writes" ~pages:8
          ~config:(fun c -> { c with Cgc.Config.blacklisting = false })
          ~decay:{ Starvation.dh_every = 24; dh_region_bytes = 4096 }
          (fun h ->
            build_chain h ~slot:0 ~n:32;
            Mem.set_fault_plan h.W.Harness.mem
              (Some
                 (Mem.Fault.plan ~countdown:24 ~rearm:true ~target:Mem.Fault.Writes
                    ~decay_bytes:4096 ()));
            for i = 1 to 3000 do
              tolerant (fun () -> churn h ~n:1);
              tolerant (fun () -> W.Harness.set_root h 30 i)
            done;
            "unreachable: memory should have decayed away") );
    ( "sv-decay-slow",
      fun () ->
        matrix_scenario ~name:"sv-decay-slow" ~pages:8
          ~config:(fun c -> { c with Cgc.Config.blacklisting = false })
          ~decay:{ Starvation.dh_every = 40; dh_region_bytes = 4096 }
          (fun h ->
            build_chain h ~slot:0 ~n:16;
            Mem.set_fault_plan h.W.Harness.mem
              (Some
                 (Mem.Fault.plan ~countdown:40 ~rearm:true ~target:Mem.Fault.Writes
                    ~decay_bytes:4096 ()));
            let machine = h.W.Harness.machine in
            for i = 1 to 4000 do
              tolerant (fun () ->
                  let o = Machine.allocate machine matrix_obj in
                  Machine.write_field machine o 1 i);
              tolerant (fun () -> W.Harness.set_root h 30 i)
            done;
            "unreachable: memory should have decayed away") );
    (* -- exhausted ------------------------------------------------- *)
    ( "sv-exhausted",
      fun () ->
        matrix_scenario ~name:"sv-exhausted" ~pages:8 (fun h ->
            build_chain h ~slot:0 ~n:1000;
            "unreachable: the chain outgrows the heap") );
  ]

let matrix_names = List.map fst matrix_table
let starvation_matrix () = List.map (fun (_, f) -> f ()) matrix_table

let pp_matrix_entry ppf e =
  Fmt.pf ppf "%-18s predicted %-18s measured %-18s %s" e.m_name
    (Starvation.class_name e.m_predicted)
    (Starvation.class_name e.m_measured)
    (match e.m_oom with
    | Some d -> Fmt.str "(%s; %d rungs)" (Cgc.Gc.oom_message d) e.m_ladder_rungs
    | None -> Fmt.str "(no OOM; %d rungs)" e.m_ladder_rungs)

(* Dynamic provenance for a finding's example object: ask the live
   collector why it is (still) retained. *)
(* Chains through long linked structures (a queue's spine, a list) can
   run to hundreds of steps; keep the head, which names the root, and
   summarize the rest. *)
let max_chain_steps = 8

let pp_chain ppf chain =
  let n = List.length chain in
  if n <= max_chain_steps then Cgc.Inspect.pp_chain ppf chain
  else begin
    Fmt.pf ppf "@[<v>";
    List.iteri
      (fun i step ->
        if i < max_chain_steps then
          Fmt.pf ppf "%s%a@," (String.make (2 * i) ' ') Cgc.Inspect.pp_step step)
      chain;
    Fmt.pf ppf "%s... %d more steps" (String.make (2 * max_chain_steps) ' ') (n - max_chain_steps);
    Fmt.pf ppf "@]"
  end

let explain outcome ppf id =
  match Recorder.base_of_obj outcome.o_recorder id with
  | None -> ()
  | Some base ->
      if Cgc.Gc.is_allocated outcome.o_gc base then (
        match Cgc.Inspect.why_live outcome.o_gc base with
        | Some chain -> Fmt.pf ppf "  e.g. object #%d: %a@," id pp_chain chain
        | None -> Fmt.pf ppf "  e.g. object #%d at %a (allocated, no root chain found)@," id
                    Cgc_vm.Addr.pp base)
      else Fmt.pf ppf "  e.g. object #%d (since reclaimed)@," id

(* ------------------------------------------------------------------ *)
(* The generational fix matrix: the four headline findings replayed
   through a fresh Generational collector, original vs fixed trace,
   with the promotion model's predicted garbage checked against the
   measured figure on both sides.  This is the §3.1 experiment: an
   uncleared link or stack slot does not just retain dead data, it
   tenures it past the reach of every future minor collection. *)

let gen_promote_after = 1

type gen_fix_entry = {
  g_scenario : string;
  g_rule : string;
  g_cmp : Replay.gen_comparison;
  g_predicted_before : Promotion.prediction;
  g_predicted_after : Promotion.prediction;
}

let gen_fix_targets =
  [
    ("grid-embedded", "R1");
    ("queue-no-clear", "R2");
    ("list-reverse-careless", "R5");
    ("program-t-careless", "R5");
  ]

let generational_fix (o : outcome) rule =
  match Analysis.fix_for o.o_analysis rule with
  | None -> None
  | Some f ->
      let edits = match f.Analysis.suggestion with Some s -> s.Fixes.fx_edits | None -> [] in
      let p = o.o_analysis.Analysis.program in
      Some
        {
          g_scenario = o.o_name;
          g_rule = rule;
          g_cmp = Replay.compare_fix_generational ~promote_after:gen_promote_after p edits;
          g_predicted_before = Promotion.predict ~promote_after:gen_promote_after p;
          g_predicted_after =
            Promotion.predict ~promote_after:gen_promote_after (Fixes.apply p edits);
        }

let generational_fixes ?outcomes () =
  let outcomes = match outcomes with Some o -> o | None -> run_all () in
  List.filter_map
    (fun (scenario, rule) ->
      match List.find_opt (fun o -> o.o_name = scenario) outcomes with
      | None -> None
      | Some o -> generational_fix o rule)
    gen_fix_targets

let pp_gen_fix_entry ppf e =
  let c = e.g_cmp in
  Fmt.pf ppf
    "@[<v>%s %s:@,\
    \  measured:  promoted garbage %6dB -> %6dB (drop %dB); retention drop %dB; reads %s@,\
    \  predicted: promoted garbage %6dB -> %6dB (tolerance %dB/%dB): %s@]" e.g_scenario e.g_rule
    c.Replay.gcmp_garbage_before c.Replay.gcmp_garbage_after c.Replay.gcmp_garbage_drop
    c.Replay.gcmp_retention_drop
    (if c.Replay.gcmp_reads_equal then "preserved" else "CHANGED")
    e.g_predicted_before.Promotion.pr_garbage_bytes e.g_predicted_after.Promotion.pr_garbage_bytes
    (Promotion.tolerance e.g_predicted_before)
    (Promotion.tolerance e.g_predicted_after)
    (if
       Promotion.agrees e.g_predicted_before ~measured:c.Replay.gcmp_garbage_before
       && Promotion.agrees e.g_predicted_after ~measured:c.Replay.gcmp_garbage_after
     then "agrees"
     else "DRIFT")

(* The acceptance matrix: which rules must (and must not) fire on which
   scenario, plus soundness and measurement tolerance everywhere.
   Pinned empirically; a change that shifts one of these is a behaviour
   change worth noticing. *)
let selfcheck () =
  let outcomes = run_all () in
  let get n = List.find (fun o -> o.o_name = n) outcomes in
  let checks = ref [] in
  let check name ok = checks := (name, ok) :: !checks in
  List.iter
    (fun o ->
      let v = Analysis.validate o.o_analysis in
      check (o.o_name ^ ": sound") v.Analysis.sound;
      check (o.o_name ^ ": within tolerance of measured") v.Analysis.within_tolerance)
    outcomes;
  let has n rule = Analysis.has_finding (get n).o_analysis rule in
  check "grid-embedded flags R1 (embedded links)" (has "grid-embedded" "R1");
  check "grid-separate does not flag R1" (not (has "grid-separate" "R1"));
  check "queue-no-clear flags R2 (uncleared links)" (has "queue-no-clear" "R2");
  check "queue-clear does not flag R2" (not (has "queue-clear" "R2"));
  check "list-reverse-careless flags R5 (stack hygiene)" (has "list-reverse-careless" "R5");
  check "list-reverse-cleared does not flag R5" (not (has "list-reverse-cleared" "R5"));
  check "program-t-careless flags R5" (has "program-t-careless" "R5");
  check "careless retains more than hygienic (model agrees)"
    (Analysis.max_excess (get "program-t-careless").o_analysis
    >= Analysis.max_excess (get "program-t-hygienic").o_analysis);
  (* Fix suggestions: every headline finding must carry a suggestion
     that passes static verification AND, replayed through the real
     collector, retains measurably less with identical read streams. *)
  let fix_check scenario rule =
    let a = (get scenario).o_analysis in
    let label = Fmt.str "%s %s fix" scenario rule in
    match Analysis.fix_for a rule with
    | None -> check (label ^ ": suggested") false
    | Some f ->
        check (label ^ ": suggested") true;
        check
          (label ^ ": statically sound")
          (match f.Analysis.verdict with Some v -> Fixes.sound v | None -> false);
        let edits =
          match f.Analysis.suggestion with Some s -> s.Fixes.fx_edits | None -> []
        in
        let cmp = Replay.compare_fix a.Analysis.program edits in
        check (label ^ ": replay drops retention") (cmp.Replay.cmp_retention_drop > 0);
        check (label ^ ": replay preserves reads") cmp.Replay.cmp_reads_equal
  in
  fix_check "grid-embedded" "R1";
  fix_check "queue-no-clear" "R2";
  fix_check "list-reverse-careless" "R5";
  fix_check "program-t-careless" "R5";
  (* The generational fix matrix: the same findings replayed through
     the generational backend.  Each fix must still preserve the read
     stream, must measurably lower the §3.1 promoted garbage, and the
     promotion model's prediction must agree with the measured figure
     on both sides of the fix. *)
  let gen = generational_fixes ~outcomes () in
  check "gen fix matrix covers all four targets" (List.length gen = List.length gen_fix_targets);
  List.iter
    (fun e ->
      let label = Fmt.str "gen %s %s" e.g_scenario e.g_rule in
      let c = e.g_cmp in
      check (label ^ ": replay preserves reads") c.Replay.gcmp_reads_equal;
      check (label ^ ": promotes garbage before fix") (c.Replay.gcmp_garbage_before > 0);
      check (label ^ ": fix lowers promoted garbage") (c.Replay.gcmp_garbage_drop > 0);
      check
        (label ^ ": model predicts the drop")
        (e.g_predicted_before.Promotion.pr_garbage_bytes
        > e.g_predicted_after.Promotion.pr_garbage_bytes);
      check
        (label ^ ": model within tolerance (before fix)")
        (Promotion.agrees e.g_predicted_before ~measured:c.Replay.gcmp_garbage_before);
      check
        (label ^ ": model within tolerance (after fix)")
        (Promotion.agrees e.g_predicted_after ~measured:c.Replay.gcmp_garbage_after);
      check
        (label ^ ": dirty-bit audits exact")
        (List.for_all Replay.audit_exact c.Replay.gcmp_before.Replay.gr_audits
        && List.for_all Replay.audit_exact c.Replay.gcmp_after.Replay.gr_audits))
    gen;
  (* The starvation matrix: static classification must match the real
     collector's behaviour exactly, scenario by scenario. *)
  let matrix = starvation_matrix () in
  check "starvation matrix has >= 12 scenarios" (List.length matrix >= 12);
  List.iter
    (fun e ->
      check
        (Fmt.str "%s: predicted %s = measured %s" e.m_name
           (Starvation.class_name e.m_predicted)
           (Starvation.class_name e.m_measured))
        (e.m_predicted = e.m_measured))
    matrix;
  check "matrix exercises memory decay (memory_decayed diagnosed)"
    (List.exists
       (fun e ->
         match e.m_oom with Some d -> d.Cgc.Gc.memory_decayed | None -> false)
       matrix);
  (List.rev !checks, outcomes)
