(* Bundled workload scenarios with recorders attached — the
   cross-validation suite.  Each scenario runs one of the repo's
   mutator programs with a trace recorder hooked in through its
   [?prepare] hook, analyzes the recorded IR, and keeps the live
   collector handle around so findings can be explained with dynamic
   provenance chains. *)

module W = Cgc_workloads
module Machine = Cgc_mutator.Machine

type outcome = {
  o_name : string;
  o_analysis : Analysis.t;
  o_recorder : Recorder.t;
  o_gc : Cgc.Gc.t;
  o_note : string;  (** the workload's own result, pretty-printed *)
}

let finish name rec_ gc note =
  let program = Recorder.finish rec_ in
  { o_name = name; o_analysis = Analysis.run program; o_recorder = rec_; o_gc = gc; o_note = note }

let with_harness name runner =
  let st = ref None in
  let prepare (h : W.Harness.t) =
    st := Some (Recorder.attach h.W.Harness.machine ~globals:h.W.Harness.data, h.W.Harness.gc)
  in
  let note = runner ~prepare in
  match !st with
  | Some (rec_, gc) -> finish name rec_ gc note
  | None -> invalid_arg "scenario runner never called prepare"

let with_platform name platform =
  let st = ref None in
  let prepare (env : W.Platform.env) =
    st := Some (Recorder.attach env.W.Platform.machine ~globals:env.W.Platform.data, env.W.Platform.gc)
  in
  let result = W.Program_t.run ~prepare platform in
  match !st with
  | Some (rec_, gc) -> finish name rec_ gc (Fmt.str "%a" W.Program_t.pp_result result)
  | None -> invalid_arg "program_t never called prepare"

let list_reverse name mode =
  with_harness name (fun ~prepare ->
      let r = W.List_reverse.run ~prepare mode ~elements:60 ~iterations:8 in
      Fmt.str "%a" W.List_reverse.pp r)

let grid name repr =
  with_harness name (fun ~prepare ->
      let r = W.Grid.run_one ~prepare repr ~rows:12 ~cols:12 ~target:30 in
      Fmt.str "grid %dx%d: retained %d/%d cells (%.0f%%)" r.W.Grid.rows r.W.Grid.cols
        r.W.Grid.retained_cells r.W.Grid.total_cells (100. *. r.W.Grid.retained_fraction))

let queue name ~clear_links =
  with_harness name (fun ~prepare ->
      let r = W.Queue_lazy.run ~prepare ~clear_links 160 in
      Fmt.str "%a" W.Queue_lazy.pp r)

let program_t name machine_config =
  with_platform name (W.Platform.clean ~machine_config ())

let table =
  [
    ("list-reverse-careless", fun () -> list_reverse "list-reverse-careless" W.List_reverse.Careless);
    ("list-reverse-cleared", fun () -> list_reverse "list-reverse-cleared" W.List_reverse.Cleared);
    ("grid-embedded", fun () -> grid "grid-embedded" W.Grid.Embedded);
    ("grid-separate", fun () -> grid "grid-separate" W.Grid.Separate);
    ("queue-no-clear", fun () -> queue "queue-no-clear" ~clear_links:false);
    ("queue-clear", fun () -> queue "queue-clear" ~clear_links:true);
    ("program-t-careless", fun () -> program_t "program-t-careless" Machine.careless_config);
    ("program-t-hygienic", fun () -> program_t "program-t-hygienic" Machine.hygienic_config);
  ]

let names = List.map fst table
let run name = Option.map (fun f -> f ()) (List.assoc_opt name table)
let run_all () = List.map (fun (_, f) -> f ()) table

(* Dynamic provenance for a finding's example object: ask the live
   collector why it is (still) retained. *)
(* Chains through long linked structures (a queue's spine, a list) can
   run to hundreds of steps; keep the head, which names the root, and
   summarize the rest. *)
let max_chain_steps = 8

let pp_chain ppf chain =
  let n = List.length chain in
  if n <= max_chain_steps then Cgc.Inspect.pp_chain ppf chain
  else begin
    Fmt.pf ppf "@[<v>";
    List.iteri
      (fun i step ->
        if i < max_chain_steps then
          Fmt.pf ppf "%s%a@," (String.make (2 * i) ' ') Cgc.Inspect.pp_step step)
      chain;
    Fmt.pf ppf "%s... %d more steps" (String.make (2 * max_chain_steps) ' ') (n - max_chain_steps);
    Fmt.pf ppf "@]"
  end

let explain outcome ppf id =
  match Recorder.base_of_obj outcome.o_recorder id with
  | None -> ()
  | Some base ->
      if Cgc.Gc.is_allocated outcome.o_gc base then (
        match Cgc.Inspect.why_live outcome.o_gc base with
        | Some chain -> Fmt.pf ppf "  e.g. object #%d: %a@," id pp_chain chain
        | None -> Fmt.pf ppf "  e.g. object #%d at %a (allocated, no root chain found)@," id
                    Cgc_vm.Addr.pp base)
      else Fmt.pf ppf "  e.g. object #%d (since reclaimed)@," id

(* The acceptance matrix: which rules must (and must not) fire on which
   scenario, plus soundness and measurement tolerance everywhere.
   Pinned empirically; a change that shifts one of these is a behaviour
   change worth noticing. *)
let selfcheck () =
  let outcomes = run_all () in
  let get n = List.find (fun o -> o.o_name = n) outcomes in
  let checks = ref [] in
  let check name ok = checks := (name, ok) :: !checks in
  List.iter
    (fun o ->
      let v = Analysis.validate o.o_analysis in
      check (o.o_name ^ ": sound") v.Analysis.sound;
      check (o.o_name ^ ": within tolerance of measured") v.Analysis.within_tolerance)
    outcomes;
  let has n rule = Analysis.has_finding (get n).o_analysis rule in
  check "grid-embedded flags R1 (embedded links)" (has "grid-embedded" "R1");
  check "grid-separate does not flag R1" (not (has "grid-separate" "R1"));
  check "queue-no-clear flags R2 (uncleared links)" (has "queue-no-clear" "R2");
  check "queue-clear does not flag R2" (not (has "queue-clear" "R2"));
  check "list-reverse-careless flags R5 (stack hygiene)" (has "list-reverse-careless" "R5");
  check "list-reverse-cleared does not flag R5" (not (has "list-reverse-cleared" "R5"));
  check "program-t-careless flags R5" (has "program-t-careless" "R5");
  check "careless retains more than hygienic (model agrees)"
    (Analysis.max_excess (get "program-t-careless").o_analysis
    >= Analysis.max_excess (get "program-t-hygienic").o_analysis);
  (List.rev !checks, outcomes)
