(** The mutator machine: registers and a C-like stack.

    Reproduces the root-pollution phenomena of the paper's sections 3
    and 3.1:

    - stack frames are {e not} cleared on entry, so "a pointer may be
      written to a stack location, the stack may be popped to well below
      that pointer's location, the stack may grow again, and the garbage
      collector may be invoked with the pointer again appearing live";
    - RISC-style calling conventions "encourage unnecessarily large
      stack frames, parts of which are never written" ([frame_padding]);
    - register windows and kernel calls leave non-deterministic residue
      in registers ([register_residue], [syscall_noise]) — the source of
      the paper's non-reproducible results;
    - the out-of-line allocator itself spills the fresh pointer to the
      stack, and may or may not "carefully clean up after itself"
      ([allocator_self_cleanup]);
    - the allocator can "occasionally try to clear areas in the stack
      beyond the most recently activated frame" ([stack_clearing]). *)

open Cgc_vm

exception Stack_overflow of { sp : Addr.t; requested_words : int; limit : Addr.t }
(** The simulated stack cannot grow by [requested_words] below [sp]
    without crossing [limit] (the low end of the stack segment).  A
    typed analog of the OS's SIGSEGV-on-guard-page. *)

exception Already_parked of { sp : Addr.t }
(** {!park} was called on a machine that is already parked at [sp].
    Typed like {!Stack_overflow} so harnesses can match on it; the
    machine is left untouched and remains usable. *)

type config = {
  n_registers : int;
  register_residue : float;
      (** probability per call that a stale pointer value leaks into a
          callee-visible register (register-window effect) *)
  syscall_noise : float;
      (** probability per allocation that a register picks up a random
          word ("register values left over from kernel calls and/or
          context switches") *)
  frame_padding : int;  (** extra never-written words per frame *)
  clear_frames_on_entry : bool;  (** defensive, GC-aware code style *)
  clear_frames_on_exit : bool;
  allocator_self_cleanup : bool;
      (** the allocator clears its own stack scratch before returning
          (paper section 3.1, first technique) *)
  stack_clearing : bool;  (** paper section 3.1, second technique *)
  stack_clear_period : int;  (** allocations between clearing attempts *)
  stack_clear_words : int;  (** words cleared below the stack pointer per attempt *)
}

val default_config : config
(** 32 registers, no noise, 2 padding words, no frame clearing,
    allocator cleans up, stack clearing off, period 64, 256 words. *)

val careless_config : config
(** Code "written in C for explicit deallocation": generous padding, no
    cleanup of any kind — the worst case of section 3.1. *)

val hygienic_config : config
(** Defensive, GC-aware style: allocator cleanup and stack clearing on. *)

type t

type frame

(** {1 Trace events}

    Every observable state change flows past an attached tracer (see
    {!set_tracer}), so a recorder can rebuild the whole mutator program
    — allocations, register and stack traffic, frame lifetimes, heap
    data-flow — as a first-class IR.  Collections have no call path
    through the machine (they fire inside [Cgc.Gc.allocate] or via
    direct [Cgc.Gc.collect] calls), so the machine polls the
    collector's cycle counter before every emission and synthesizes an
    [E_gc] event carrying the measured post-sweep statistics. *)
type event =
  | E_alloc of { base : Addr.t; bytes : int; pointer_free : bool }
      (** [bytes] is the size-class-rounded extent the marker scans. *)
  | E_reg_write of { reg : int; value : int }
  | E_reg_read of { reg : int }
  | E_frame_push of { slots : int; padding : int; cleared : bool }
  | E_frame_pop of { slots : int; padding : int; cleared : bool }
  | E_local_write of { addr : Addr.t; value : int }
  | E_local_read of { addr : Addr.t }
  | E_spill_write of { addr : Addr.t; value : int }
      (** Allocator scratch below the stack pointer. *)
  | E_stack_clear of { lo : Addr.t; hi : Addr.t }
  | E_heap_write of { obj : Addr.t; field : int; value : int }
  | E_heap_read of { obj : Addr.t; field : int }
  | E_root_write of { addr : Addr.t; value : int }
  | E_root_read of { addr : Addr.t }
  | E_gc of { collections : int; live_objects : int; live_bytes : int }
  | E_park of { words : int }
  | E_unpark
  | E_clear_registers
  | E_finalizer of { obj : Addr.t; token : int }
      (** A finalizer was registered for the object at [obj]; [token]
          is a stable hash of the finalizer label. *)
  | E_spawn of { thread : int; words : int }
      (** A child thread starts owning [words] stack words below the
          parent's sp. *)
  | E_join of { thread : int }
  | E_write_barrier of { obj : Addr.t; field : int }
      (** Generational card-marking of a pointer store (synthesized for
          every store whose value is a live object address; only emitted
          while a tracer is attached). *)

val set_tracer : t -> (event -> unit) option -> unit
(** Attach (or detach) the single tracer.  Tracing is off by default
    and costs nothing when off. *)

val poll_gc : t -> unit
(** Force the collection-counter poll now (normally implicit in every
    traced operation).  Recorders call this once more when finishing,
    so a final [Cgc.Gc.collect] that is followed by no further machine
    activity still yields its [E_gc] event. *)

val create : ?config:config -> ?seed:int -> Mem.t -> stack:Segment.t -> gc:Cgc.Gc.t -> t
(** Attach to an existing stack segment and collector.  Registers the
    machine's registers and live stack extent as GC roots. *)

val gc : t -> Cgc.Gc.t
val config : t -> config
val stack_pointer : t -> Addr.t
val stack_base : t -> Addr.t
(** High end of the stack (the stack grows down from here). *)

val stack_limits : t -> Addr.t * Addr.t
(** [(lowest, highest)] addresses of the whole stack segment. *)

val low_water : t -> Addr.t
(** Deepest stack pointer observed so far. *)

val live_stack_words : t -> int

(** {1 Registers} *)

val n_registers : t -> int
val get_register : t -> int -> int
val set_register : t -> int -> int -> unit
val clear_registers : t -> unit

(** {1 Frames} *)

val call : t -> slots:int -> (frame -> 'a) -> 'a
(** Push a frame of [slots] locals (plus configured padding), run the
    body, pop.  Frame memory is recycled stack memory: unless the
    configuration clears frames, locals start out holding whatever the
    previous occupant left there.
    @raise Stack_overflow when the frame would not fit. *)

val local_addr : frame -> int -> Addr.t
(** Address of local slot [i] — itself a root while the frame is live. *)

val get_local : frame -> int -> int
val set_local : frame -> int -> int -> unit

val park : t -> words:int -> unit
(** Model a thread blocking deep in a wait call: the stack pointer moves
    down by [words] and stays there (the region is {e not} initialized,
    so whatever the thread did earlier remains visible to the
    conservative scan).  Appendix B's idle Cedar threads sit exactly in
    this state.
    @raise Stack_overflow when the parked region would not fit.
    @raise Already_parked if the machine is already parked. *)

val unpark : t -> unit
(** Return from the blocking call; the parked region becomes dead stack.
    No-op if not parked. *)

val parked : t -> bool

(** {1 Threads}

    A minimal cooperative thread model past park/unpark: a spawned
    child owns a region of [words] stack words below the parent's sp
    until joined.  Joins must nest (LIFO) — enough to exercise the
    analyzer's thread-lifecycle handling without a scheduler. *)

val spawn : t -> words:int -> int
(** Start a child thread; returns its id.
    @raise Stack_overflow when the child's region would not fit. *)

val join : t -> int -> unit
(** Join the most recently spawned live thread; its stack region
    becomes dead stack.
    @raise Invalid_argument when [thread] is not the innermost live
    child. *)

val live_threads : t -> int list
(** Ids of spawned-but-unjoined threads, innermost first. *)

(** {1 Allocation} *)

val allocate : ?pointer_free:bool -> ?finalizer:string -> t -> int -> Addr.t
(** Allocate through the collector, modelling the out-of-line allocation
    call: the result is spilled to allocator scratch space below the
    stack pointer (cleared afterwards only with
    [allocator_self_cleanup]), register 0 receives the result, noise
    hooks fire, and the configured stack clearing runs. *)

val allocation_count : t -> int

(** {1 Heap and global access}

    Loads and stores as the compiled mutator would issue them.  These
    delegate to [Cgc.Gc.get_field]/[set_field] (resp. raw segment
    access) but flow past the tracer, so recorded programs carry the
    mutator's data-flow and not just its allocations. *)

val read_field : t -> Addr.t -> int -> int
val write_field : t -> Addr.t -> int -> int -> unit

val read_root_word : t -> Segment.t -> Addr.t -> int
(** Read a global root slot (a word in a registered static segment). *)

val write_root_word : t -> Segment.t -> Addr.t -> int -> unit

val clear_dead_stack : t -> ?words:int -> unit -> unit
(** Explicitly clear up to [words] (default: all) of the dead region
    below the stack pointer. *)

val context_switch_noise : t -> unit
(** Simulate a kernel call / context switch: sprinkle random words into
    a few registers (uses the machine's RNG; honours [syscall_noise]
    rate times 8 registers). *)

val pp : Format.formatter -> t -> unit
