open Cgc_vm

let nil = 0
let word = 4

let gcm = Machine.gc

(* Run [f] with automatic collection suspended: builders that keep
   intermediate addresses only on the OCaml side (invisible to the
   simulated root set) must not let a collection run mid-construction.
   Builders that thread their intermediates through machine registers
   (alloc_cycle, queue_push) do not need this. *)
let without_auto_collect m f =
  let gc = gcm m in
  let saved = Cgc.Gc.auto_collect gc in
  Cgc.Gc.set_auto_collect gc false;
  Fun.protect ~finally:(fun () -> Cgc.Gc.set_auto_collect gc saved) f

let cons m ~car ~cdr =
  let c = Machine.allocate m (2 * word) in
  Machine.write_field m c 0 car;
  Machine.write_field m c 1 cdr;
  c

let car m c = Machine.read_field m c 0
let cdr m c = Machine.read_field m c 1
let set_car m c v = Machine.write_field m c 0 v
let set_cdr m c v = Machine.write_field m c 1 v

let list_of m values =
  (* Build back to front, keeping the partial list in register 1 so it
     survives collections triggered by the next cons. *)
  let saved = Machine.get_register m 1 in
  Machine.set_register m 1 nil;
  List.iter
    (fun v ->
      let c = cons m ~car:v ~cdr:(Machine.get_register m 1) in
      Machine.set_register m 1 (Addr.to_int c))
    (List.rev values);
  let head = Machine.get_register m 1 in
  Machine.set_register m 1 saved;
  Addr.of_int head

let list_values m l =
  let rec go acc c = if c = nil then List.rev acc else go (car m c :: acc) (cdr m c) in
  go [] (Addr.to_int l)

let list_length m l =
  let rec go n c = if c = nil then n else go (n + 1) (cdr m c) in
  go 0 (Addr.to_int l)

let alloc_cycle ?finalizer ?(cell_bytes = 4) m ~n =
  if n < 1 then invalid_arg "Builder.alloc_cycle: need at least one cell";
  if cell_bytes < 4 then invalid_arg "Builder.alloc_cycle: cells hold at least a pointer";
  let saved1 = Machine.get_register m 1 and saved2 = Machine.get_register m 2 in
  let head = Machine.allocate ?finalizer m cell_bytes in
  Machine.set_register m 1 (Addr.to_int head);
  Machine.set_register m 2 (Addr.to_int head);
  let magic = 0xCAFE0000 in
  if cell_bytes >= 8 then Machine.write_field m head 1 magic;
  for _ = 2 to n do
    let cell = Machine.allocate m cell_bytes in
    if cell_bytes >= 8 then Machine.write_field m cell 1 magic;
    (* prev.next <- cell *)
    Machine.write_field m (Addr.of_int (Machine.get_register m 2)) 0 (Addr.to_int cell);
    Machine.set_register m 2 (Addr.to_int cell)
  done;
  (* close the cycle: tail.next <- head *)
  Machine.write_field m (Addr.of_int (Machine.get_register m 2)) 0 (Addr.to_int head);
  Machine.set_register m 1 saved1;
  Machine.set_register m 2 saved2;
  head

let cycle_cells m start =
  let rec go acc c =
    let next = Addr.of_int (Machine.read_field m c 0) in
    if Addr.equal next start then List.rev (c :: acc) else go (c :: acc) next
  in
  go [] start

let atomic_array m values =
  let a = Machine.allocate ~pointer_free:true m (max 1 (Array.length values) * word) in
  Array.iteri (fun i v -> Machine.write_field m a i v) values;
  a

let scanned_array m values =
  let a = Machine.allocate m (max 1 (Array.length values) * word) in
  Array.iteri (fun i v -> Machine.write_field m a i v) values;
  a

(* --- grids --- *)

type grid = {
  rows : int;
  cols : int;
  vertices : Addr.t array;
  headers : Addr.t;
  spine : Addr.t array;
}

(* Embedded representation (figure 3): vertex = [right; down; p0; p1]. *)
let grid_embedded m ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Builder.grid_embedded: empty grid";
  without_auto_collect m (fun () ->
      let vertices = Array.make (rows * cols) Addr.zero in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          let v = Machine.allocate m (4 * word) in
          Machine.write_field m v 2 ((r lsl 16) lor c);
          vertices.((r * cols) + c) <- v
        done
      done;
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          let v = vertices.((r * cols) + c) in
          if c + 1 < cols then Machine.write_field m v 0 (Addr.to_int vertices.((r * cols) + c + 1));
          if r + 1 < rows then Machine.write_field m v 1 (Addr.to_int vertices.(((r + 1) * cols) + c))
        done
      done;
      let headers = Machine.allocate m ((rows + cols) * word) in
      for r = 0 to rows - 1 do
        Machine.write_field m headers r (Addr.to_int vertices.(r * cols))
      done;
      for c = 0 to cols - 1 do
        Machine.write_field m headers (rows + c) (Addr.to_int vertices.(c))
      done;
      { rows; cols; vertices; headers; spine = [||] })

(* Separate representation (figure 4): vertices are pure payload; each
   row and each column is a chain of cons cells carrying vertex
   pointers. *)
let grid_separate m ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Builder.grid_separate: empty grid";
  without_auto_collect m (fun () ->
      let vertices = Array.make (rows * cols) Addr.zero in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          let v = Machine.allocate m (2 * word) in
          Machine.write_field m v 0 ((r lsl 16) lor c);
          vertices.((r * cols) + c) <- v
        done
      done;
      let spine = ref [] in
      let chain cells =
        (* cons up a list over [cells], back to front *)
        let rec go next = function
          | [] -> next
          | v :: rest ->
              let c = cons m ~car:(Addr.to_int v) ~cdr:next in
              spine := c :: !spine;
              go (Addr.to_int c) rest
        in
        go nil (List.rev cells)
      in
      let headers = Machine.allocate m ((rows + cols) * word) in
      for r = 0 to rows - 1 do
        let cells = List.init cols (fun c -> vertices.((r * cols) + c)) in
        Machine.write_field m headers r (chain cells)
      done;
      for c = 0 to cols - 1 do
        let cells = List.init rows (fun r -> vertices.((r * cols) + c)) in
        Machine.write_field m headers (rows + c) (chain cells)
      done;
      { rows; cols; vertices; headers; spine = Array.of_list !spine })

(* --- queue --- *)

type queue = {
  q_machine : Machine.t;
  q_header : Addr.t; (* two words: head, tail; must be rooted by the client *)
  mutable q_len : int;
}

let queue_create m =
  let header = Machine.allocate m (2 * word) in
  { q_machine = m; q_header = header; q_len = 0 }

let queue_header q = q.q_header

let queue_push q v =
  let m = q.q_machine in
  (* node = [next; value] *)
  let node = Machine.allocate m (2 * word) in
  Machine.write_field m node 1 v;
  let tail = Machine.read_field m q.q_header 1 in
  if tail = nil then Machine.write_field m q.q_header 0 (Addr.to_int node)
  else Machine.write_field m (Addr.of_int tail) 0 (Addr.to_int node);
  Machine.write_field m q.q_header 1 (Addr.to_int node);
  q.q_len <- q.q_len + 1;
  node

let queue_pop ?(clear_link = false) q =
  let m = q.q_machine in
  let head = Machine.read_field m q.q_header 0 in
  if head = nil then None
  else begin
    let node = Addr.of_int head in
    let next = Machine.read_field m node 0 in
    let v = Machine.read_field m node 1 in
    Machine.write_field m q.q_header 0 next;
    if next = nil then Machine.write_field m q.q_header 1 nil;
    if clear_link then Machine.write_field m node 0 nil;
    q.q_len <- q.q_len - 1;
    Some v
  end

let queue_length q = q.q_len

let queue_nodes q =
  let m = q.q_machine in
  let rec go acc a =
    if a = nil then List.rev acc
    else go (Addr.of_int a :: acc) (Machine.read_field m (Addr.of_int a) 0)
  in
  go [] (Machine.read_field m q.q_header 0)

(* --- trees --- *)

let tree_build m ~depth =
  if depth < 0 then invalid_arg "Builder.tree_build: negative depth";
  without_auto_collect m (fun () ->
      let rec build d =
        let node = Machine.allocate m (3 * word) in
        Machine.write_field m node 2 d;
        if d > 0 then begin
          Machine.write_field m node 0 (Addr.to_int (build (d - 1)));
          Machine.write_field m node 1 (Addr.to_int (build (d - 1)))
        end;
        node
      in
      build depth)

let tree_nodes m root =
  let rec go acc node =
    if node = nil then acc
    else begin
      let acc = Addr.of_int node :: acc in
      let acc = go acc (Machine.read_field m (Addr.of_int node) 0) in
      go acc (Machine.read_field m (Addr.of_int node) 1)
    end
  in
  List.rev (go [] (Addr.to_int root))

let tree_size m root = List.length (tree_nodes m root)
