open Cgc_vm

exception Stack_overflow of { sp : Addr.t; requested_words : int; limit : Addr.t }
exception Already_parked of { sp : Addr.t }

type config = {
  n_registers : int;
  register_residue : float;
  syscall_noise : float;
  frame_padding : int;
  clear_frames_on_entry : bool;
  clear_frames_on_exit : bool;
  allocator_self_cleanup : bool;
  stack_clearing : bool;
  stack_clear_period : int;
  stack_clear_words : int;
}

let default_config =
  {
    n_registers = 32;
    register_residue = 0.;
    syscall_noise = 0.;
    frame_padding = 2;
    clear_frames_on_entry = false;
    clear_frames_on_exit = false;
    allocator_self_cleanup = true;
    stack_clearing = false;
    stack_clear_period = 64;
    stack_clear_words = 256;
  }

let careless_config =
  {
    default_config with
    frame_padding = 8;
    allocator_self_cleanup = false;
    stack_clearing = false;
  }

let hygienic_config =
  { default_config with allocator_self_cleanup = true; stack_clearing = true }

type event =
  | E_alloc of { base : Addr.t; bytes : int; pointer_free : bool }
  | E_reg_write of { reg : int; value : int }
  | E_reg_read of { reg : int }
  | E_frame_push of { slots : int; padding : int; cleared : bool }
  | E_frame_pop of { slots : int; padding : int; cleared : bool }
  | E_local_write of { addr : Addr.t; value : int }
  | E_local_read of { addr : Addr.t }
  | E_spill_write of { addr : Addr.t; value : int }
  | E_stack_clear of { lo : Addr.t; hi : Addr.t }
  | E_heap_write of { obj : Addr.t; field : int; value : int }
  | E_heap_read of { obj : Addr.t; field : int }
  | E_root_write of { addr : Addr.t; value : int }
  | E_root_read of { addr : Addr.t }
  | E_gc of { collections : int; live_objects : int; live_bytes : int }
  | E_park of { words : int }
  | E_unpark
  | E_clear_registers
  | E_finalizer of { obj : Addr.t; token : int }
  | E_spawn of { thread : int; words : int }
  | E_join of { thread : int }
  | E_write_barrier of { obj : Addr.t; field : int }

type t = {
  mem : Mem.t;
  gc : Cgc.Gc.t;
  rng : Rng.t;
  config : config;
  stack : Segment.t;
  stack_base : Addr.t; (* == Segment.limit stack *)
  mutable sp : Addr.t;
  mutable low_water : Addr.t;
  registers : int array;
  mutable alloc_count : int;
  mutable park_restore : Addr.t option;
  mutable threads : (int * Addr.t) list;  (* (thread id, sp to restore at join), LIFO *)
  mutable next_thread : int;
  mutable tracer : (event -> unit) option;
  mutable traced_collections : int;
}

type frame = {
  machine : t;
  f_base : Addr.t; (* lowest address of the frame's locals *)
  f_slots : int;
}

let word = 4

let create ?(config = default_config) ?(seed = 42) mem ~stack ~gc =
  if config.n_registers < 4 then invalid_arg "Machine.create: need at least 4 registers";
  let stack_base = Segment.limit stack in
  let t =
    {
      mem;
      gc;
      rng = Rng.create seed;
      config;
      stack;
      stack_base;
      sp = stack_base;
      low_water = stack_base;
      registers = Array.make config.n_registers 0;
      alloc_count = 0;
      park_restore = None;
      threads = [];
      next_thread = 0;
      tracer = None;
      traced_collections = 0;
    }
  in
  Cgc.Gc.add_register_roots gc ~label:"machine registers" (fun () -> t.registers);
  Cgc.Gc.add_dynamic_roots gc ~label:"machine stack" (fun () ->
      [ { Cgc.Roots.lo = t.sp; hi = t.stack_base; label = "live stack" } ]);
  t

let gc t = t.gc
let config t = t.config
let stack_pointer t = t.sp
let stack_base t = t.stack_base
let stack_limits t = (Segment.base t.stack, t.stack_base)
let low_water t = t.low_water
let live_stack_words t = Addr.diff t.stack_base t.sp / word
let n_registers t = t.config.n_registers

(* Tracing: every state change the conservative marker could observe is
   mirrored to the attached tracer.  Collections triggered inside
   [Cgc.Gc.allocate] (or by the workload calling [Cgc.Gc.collect]
   directly) leave no call-path through the machine, so each emission
   first polls the collector's cycle counter and synthesizes an [E_gc]
   event carrying the measured post-sweep statistics. *)
let poll_gc t =
  match t.tracer with
  | None -> ()
  | Some f ->
      let st = Cgc.Gc.stats t.gc in
      if st.Cgc.Stats.collections > t.traced_collections then begin
        t.traced_collections <- st.Cgc.Stats.collections;
        f
          (E_gc
             {
               collections = st.Cgc.Stats.collections;
               live_objects = st.Cgc.Stats.live_objects;
               live_bytes = st.Cgc.Stats.live_bytes;
             })
      end

let emit t ev =
  match t.tracer with
  | None -> ()
  | Some f ->
      poll_gc t;
      f ev

let set_tracer t tr =
  t.tracer <- tr;
  match tr with
  | Some _ -> t.traced_collections <- (Cgc.Gc.stats t.gc).Cgc.Stats.collections
  | None -> ()

let get_register t i =
  emit t (E_reg_read { reg = i });
  t.registers.(i)

let set_register t i v =
  let v = v land 0xFFFFFFFF in
  emit t (E_reg_write { reg = i; value = v });
  t.registers.(i) <- v

let clear_registers t =
  emit t E_clear_registers;
  Array.fill t.registers 0 (Array.length t.registers) 0

let allocation_count t = t.alloc_count

(* A value below the live stack: stale unless someone clears it. *)
let dead_region t = (Segment.base t.stack, t.sp)

let clear_dead_stack t ?words () =
  let lo, hi = dead_region t in
  let lo =
    match words with
    | None -> lo
    | Some w -> Addr.of_int (max (Addr.to_int lo) (Addr.to_int hi - (w * word)))
  in
  let len = Addr.diff hi lo in
  if len > 0 then begin
    emit t (E_stack_clear { lo; hi });
    Segment.zero_range t.stack lo ~len
  end

(* Registers 0-7 model values the compiled code actively keeps live;
   residue and kernel noise only ever lands in the caller-saved upper
   registers, which the conservative scan nonetheless sees. *)
let context_switch_noise t =
  for _ = 1 to 8 do
    if Rng.chance t.rng t.config.syscall_noise then begin
      let reg = 8 + Rng.int t.rng (t.config.n_registers - 8) in
      let v = Rng.word t.rng in
      emit t (E_reg_write { reg; value = v });
      t.registers.(reg) <- v
    end
  done

let residue_noise t =
  if t.config.register_residue > 0. && Rng.chance t.rng t.config.register_residue then begin
    (* A register window rotates in, exposing a stale stack value. *)
    let lo, hi = dead_region t in
    let dead_words = Addr.diff hi lo / word in
    if dead_words > 0 then begin
      let a = Addr.add lo (word * Rng.int t.rng dead_words) in
      let reg = 8 + Rng.int t.rng (t.config.n_registers - 8) in
      let v = Segment.read_word t.stack a in
      emit t (E_reg_write { reg; value = v });
      t.registers.(reg) <- v
    end
  end

let push_frame t ~slots =
  let total_words = slots + t.config.frame_padding in
  let new_sp = Addr.add t.sp (-(total_words * word)) in
  if Addr.to_int new_sp < Addr.to_int (Segment.base t.stack) then
    raise
      (Stack_overflow { sp = t.sp; requested_words = total_words; limit = Segment.base t.stack });
  t.sp <- new_sp;
  if Addr.to_int new_sp < Addr.to_int t.low_water then t.low_water <- new_sp;
  if t.config.clear_frames_on_entry then
    Segment.zero_range t.stack new_sp ~len:(total_words * word);
  emit t
    (E_frame_push
       {
         slots;
         padding = t.config.frame_padding;
         cleared = t.config.clear_frames_on_entry;
       });
  { machine = t; f_base = new_sp; f_slots = slots }

let pop_frame t frame =
  if t.config.clear_frames_on_exit then begin
    let total_words = frame.f_slots + t.config.frame_padding in
    Segment.zero_range t.stack frame.f_base ~len:(total_words * word)
  end;
  t.sp <- Addr.add frame.f_base ((frame.f_slots + t.config.frame_padding) * word);
  emit t
    (E_frame_pop
       {
         slots = frame.f_slots;
         padding = t.config.frame_padding;
         cleared = t.config.clear_frames_on_exit;
       })

let call t ~slots f =
  residue_noise t;
  let frame = push_frame t ~slots in
  Fun.protect ~finally:(fun () -> pop_frame t frame) (fun () -> f frame)

let local_addr frame i =
  if i < 0 || i >= frame.f_slots then invalid_arg "Machine.local_addr: slot out of range";
  Addr.add frame.f_base (i * word)

let get_local frame i =
  let addr = local_addr frame i in
  emit frame.machine (E_local_read { addr });
  Segment.read_word frame.machine.stack addr

let set_local frame i v =
  let addr = local_addr frame i in
  emit frame.machine (E_local_write { addr; value = v land 0xFFFFFFFF });
  Segment.write_word frame.machine.stack addr v

let park t ~words =
  if t.park_restore <> None then raise (Already_parked { sp = t.sp });
  let new_sp = Addr.add t.sp (-(words * word)) in
  if Addr.to_int new_sp < Addr.to_int (Segment.base t.stack) then
    raise (Stack_overflow { sp = t.sp; requested_words = words; limit = Segment.base t.stack });
  t.park_restore <- Some t.sp;
  t.sp <- new_sp;
  if Addr.to_int new_sp < Addr.to_int t.low_water then t.low_water <- new_sp;
  emit t (E_park { words })

let unpark t =
  match t.park_restore with
  | None -> ()
  | Some sp ->
      t.park_restore <- None;
      t.sp <- sp;
      emit t E_unpark

let parked t = t.park_restore <> None

(* Threads beyond park/unpark: a spawned child owns a stack region of
   its own below the parent's sp.  The model is cooperative and LIFO
   (joins must nest), which is all the conservative marker cares about:
   while a child runs, its region is scanned like any other live
   stack. *)
let spawn t ~words =
  let new_sp = Addr.add t.sp (-(words * word)) in
  if Addr.to_int new_sp < Addr.to_int (Segment.base t.stack) then
    raise (Stack_overflow { sp = t.sp; requested_words = words; limit = Segment.base t.stack });
  let thread = t.next_thread in
  t.next_thread <- thread + 1;
  t.threads <- (thread, t.sp) :: t.threads;
  t.sp <- new_sp;
  if Addr.to_int new_sp < Addr.to_int t.low_water then t.low_water <- new_sp;
  emit t (E_spawn { thread; words });
  thread

let join t thread =
  match t.threads with
  | (tid, sp) :: rest when tid = thread ->
      t.threads <- rest;
      t.sp <- sp;
      emit t (E_join { thread })
  | _ -> invalid_arg "Machine.join: threads must be joined in LIFO order"

let live_threads t = List.map fst t.threads

(* The cheap stack-clearing algorithm of section 3.1: every
   [stack_clear_period] allocations, clear a bounded chunk of the dead
   region just below the stack pointer; clear more eagerly when the
   stack is far above its deepest point. *)
let periodic_stack_clear t =
  if t.config.stack_clearing && t.alloc_count mod t.config.stack_clear_period = 0 then begin
    let gap_words = Addr.diff t.sp t.low_water / word in
    let words = min (max t.config.stack_clear_words (gap_words / 4)) gap_words in
    if words > 0 then clear_dead_stack t ~words ()
  end

let allocate ?pointer_free ?finalizer t bytes =
  t.alloc_count <- t.alloc_count + 1;
  periodic_stack_clear t;
  context_switch_noise t;
  let base = Cgc.Gc.allocate ?pointer_free ?finalizer t.gc bytes in
  let rounded =
    match Cgc.Gc.object_size t.gc base with
    | Some b -> b
    | None -> bytes
  in
  emit t
    (E_alloc
       {
         base;
         bytes = rounded;
         pointer_free = (match pointer_free with Some b -> b | None -> false);
       });
  (match finalizer with
  | Some label -> emit t (E_finalizer { obj = base; token = Hashtbl.hash label land 0xFFFF })
  | None -> ());
  (* Out-of-line allocator scratch: the fresh pointer is spilled just
     below the caller's stack.  GC-aware allocators clear it on exit. *)
  let scratch = Addr.add t.sp (-word) in
  if Addr.to_int scratch >= Addr.to_int (Segment.base t.stack) then begin
    emit t (E_spill_write { addr = scratch; value = Addr.to_int base });
    Segment.write_word t.stack scratch (Addr.to_int base);
    if t.config.allocator_self_cleanup then begin
      emit t (E_spill_write { addr = scratch; value = 0 });
      Segment.write_word t.stack scratch 0
    end
  end;
  emit t (E_reg_write { reg = 0; value = Addr.to_int base });
  t.registers.(0) <- Addr.to_int base;
  base

(* Heap access as the compiled mutator would perform it; routing loads
   and stores through the machine is what lets an attached tracer see
   the program's data-flow, not just its allocations. *)
let read_field t obj i =
  emit t (E_heap_read { obj; field = i });
  Cgc.Gc.get_field t.gc obj i

let write_field t obj i v =
  emit t (E_heap_write { obj; field = i; value = v land 0xFFFFFFFF });
  (* Generational write barrier: pointer stores card-mark the written
     object.  Only modelled when a tracer is listening — the
     conservative collector itself needs no barrier. *)
  (match t.tracer with
  | Some _ when Cgc.Gc.find_object t.gc (Addr.of_int (v land 0xFFFFFFFF)) <> None ->
      emit t (E_write_barrier { obj; field = i })
  | _ -> ());
  Cgc.Gc.set_field t.gc obj i v

(* Global (static-data) root slots, e.g. a workload's scoreboard of
   list heads.  The segment is whichever static region the harness
   registered as a root. *)
let read_root_word t seg addr =
  emit t (E_root_read { addr });
  Segment.read_word seg addr

let write_root_word t seg addr v =
  emit t (E_root_write { addr; value = v land 0xFFFFFFFF });
  Segment.write_word seg addr v

let pp ppf t =
  Format.fprintf ppf "machine: sp=%a low=%a base=%a allocs=%d" Addr.pp t.sp Addr.pp t.low_water
    Addr.pp t.stack_base t.alloc_count
